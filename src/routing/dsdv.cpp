#include "routing/dsdv.hpp"

#include <stdexcept>

namespace eblnet::routing {

Dsdv::Dsdv(net::Env& env, net::NodeId self, DsdvParams params)
    : env_{env},
      self_{self},
      params_{params},
      periodic_timer_{env.scheduler(), [this] { on_periodic(); }},
      triggered_timer_{env.scheduler(), [this] { send_triggered_update(); }} {
  // Own entry: metric 0, always-fresh even seqno.
  table_[self_] = Entry{self_, own_seqno_, 0, env_.now()};
  // Desynchronised start so co-located nodes don't dump simultaneously.
  periodic_timer_.schedule_in(
      env_.rng_for(self_).uniform_time(sim::Time::zero(), params_.periodic_update_interval));
}

void Dsdv::attach_mac(net::MacLayer* mac) {
  if (mac == nullptr) throw std::invalid_argument{"Dsdv: null MAC"};
  mac_ = mac;
  mac_->set_tx_fail_callback([this](const net::Packet& p) { on_tx_fail(p); });
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void Dsdv::route_output(net::Packet p) {
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kRouter, self_, p);
  forward_data(std::move(p));
}

void Dsdv::route_input(net::Packet p) {
  if (p.dsdv) {
    handle_update(p);
    return;
  }
  if (!p.ip) return;
  if (p.ip->dst == self_ || p.ip->dst == net::kBroadcastAddress) {
    if (deliver_) deliver_(std::move(p));
    return;
  }
  if (p.ip->ttl <= 1) {
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kRouter, self_, p, "TTL");
    return;
  }
  --p.ip->ttl;
  env_.trace(net::TraceAction::kForward, net::TraceLayer::kRouter, self_, p);
  ++stats_.data_forwarded;
  forward_data(std::move(p));
}

void Dsdv::forward_data(net::Packet p) {
  if (p.ip->dst == net::kBroadcastAddress) {
    if (!p.mac) p.mac.emplace();
    p.mac->dst = net::kBroadcastAddress;
    mac_->enqueue(std::move(p));
    return;
  }
  const Entry* e = route(p.ip->dst);
  if (e == nullptr) {
    ++stats_.data_no_route_dropped;
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kRouter, self_, p, "NRTE");
    return;
  }
  if (!p.mac) p.mac.emplace();
  p.mac->dst = e->next_hop;
  mac_->enqueue(std::move(p));
}

const Dsdv::Entry* Dsdv::route(net::NodeId dst) const {
  const auto it = table_.find(dst);
  if (it == table_.end()) return nullptr;
  const Entry& e = it->second;
  if (e.metric == kInfinity) return nullptr;
  if (dst != self_ && env_.now() - e.updated > params_.route_lifetime) return nullptr;
  return &e;
}

bool Dsdv::has_route(net::NodeId dst) const { return route(dst) != nullptr; }

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

void Dsdv::on_periodic() {
  periodic_timer_.schedule_in(params_.periodic_update_interval);
  send_full_update();
}

void Dsdv::send_full_update() {
  own_seqno_ += 2;  // even: destination alive
  table_[self_] = Entry{self_, own_seqno_, 0, env_.now()};
  ++stats_.periodic_updates_sent;
  broadcast_update(/*full=*/true);
}

void Dsdv::send_triggered_update() {
  if (!dirty_) return;
  ++stats_.triggered_updates_sent;
  broadcast_update(/*full=*/true);  // simplified: triggered dumps are full too
}

void Dsdv::broadcast_update(bool /*full*/) {
  dirty_ = false;
  last_triggered_ = env_.now();

  net::Packet p;
  p.uid = env_.alloc_uid();
  p.type = net::PacketType::kDsdvUpdate;
  p.created = env_.now();
  p.ip.emplace();
  p.ip->src = self_;
  p.ip->dst = net::kBroadcastAddress;
  p.ip->ttl = 1;
  net::DsdvUpdateHeader h;
  h.routes.reserve(table_.size());
  for (const auto& [dst, e] : table_) {
    h.routes.push_back({dst, e.seqno, e.metric});
  }
  p.dsdv = std::move(h);
  p.mac.emplace();
  p.mac->dst = net::kBroadcastAddress;
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kRouter, self_, p);

  const sim::Time jitter =
      env_.rng_for(self_).uniform_time(sim::Time::zero(), params_.broadcast_jitter);
  // Park the packet in the pool while it waits out the jitter: the
  // capture is a 16-byte handle, not a by-value Packet.
  env_.scheduler().schedule_in(
      jitter, [this, h = env_.packet_pool().adopt(std::move(p))]() mutable {
        mac_->enqueue(std::move(*h));
        h.reset();
      });
}

void Dsdv::handle_update(const net::Packet& p) {
  ++stats_.updates_received;
  const net::NodeId from = p.prev_hop;
  if (from == net::kBroadcastAddress || from == self_) return;
  bool changed = false;

  for (const auto& adv : p.dsdv->routes) {
    if (adv.dst == self_) continue;  // we know our own route best
    const std::uint16_t metric =
        adv.metric == kInfinity ? kInfinity : static_cast<std::uint16_t>(adv.metric + 1);
    auto it = table_.find(adv.dst);
    if (it == table_.end()) {
      if (metric == kInfinity) continue;  // don't learn dead routes
      table_[adv.dst] = Entry{from, adv.seqno, metric, env_.now()};
      changed = true;
      continue;
    }
    Entry& e = it->second;
    const bool newer = static_cast<std::int32_t>(adv.seqno - e.seqno) > 0;
    const bool same_but_better = adv.seqno == e.seqno && metric < e.metric;
    if (newer || same_but_better) {
      // An odd (broken) advertisement only matters if it comes from our
      // current next hop or carries a strictly newer seqno.
      if (metric != kInfinity || newer) {
        const bool was_alive = e.metric != kInfinity;
        e = Entry{from, adv.seqno, metric, env_.now()};
        if (metric == kInfinity && was_alive) ++stats_.routes_broken;
        changed = true;
      }
    } else if (adv.seqno == e.seqno && e.next_hop == from && metric != e.metric) {
      // Same route through the same neighbour changed length.
      e.metric = metric;
      e.updated = env_.now();
      changed = true;
    } else if (e.next_hop == from && !newer && metric == e.metric && metric != kInfinity) {
      e.updated = env_.now();  // refresh
    }
  }

  if (changed) {
    dirty_ = true;
    const sim::Time earliest = last_triggered_ + params_.min_triggered_gap;
    const sim::Time at = earliest > env_.now() ? earliest : env_.now();
    if (!triggered_timer_.pending() || triggered_timer_.expires_at() > at)
      triggered_timer_.schedule_at(at);
  }
}

// ---------------------------------------------------------------------------
// Link failure
// ---------------------------------------------------------------------------

void Dsdv::on_tx_fail(const net::Packet& p) {
  if (!p.mac) return;
  mark_broken_via(p.mac->dst);
}

void Dsdv::mark_broken_via(net::NodeId next_hop) {
  bool changed = false;
  for (auto& [dst, e] : table_) {
    if (dst == self_ || e.next_hop != next_hop || e.metric == kInfinity) continue;
    e.metric = kInfinity;
    e.seqno += 1;  // odd: broken, owned by the detecting node
    e.updated = env_.now();
    ++stats_.routes_broken;
    changed = true;
    if (mac_ != nullptr) {
      for (auto& q : mac_->flush_next_hop(next_hop))
        env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, self_, q, "LNK");
    }
  }
  if (changed) {
    dirty_ = true;
    triggered_timer_.schedule_in(sim::Time::zero());
  }
}

}  // namespace eblnet::routing
