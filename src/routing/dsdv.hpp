#pragma once

#include <unordered_map>
#include <vector>

#include "net/env.hpp"
#include "net/layers.hpp"
#include "sim/timer.hpp"

namespace eblnet::routing {

/// DSDV parameters (Perkins & Bhagwat '94, NS-2-flavoured defaults).
struct DsdvParams {
  /// Full-table broadcast period.
  sim::Time periodic_update_interval{sim::Time::seconds(std::int64_t{15})};
  /// Route considered stale when not refreshed for this long (covers a
  /// few missed periodic updates).
  sim::Time route_lifetime{sim::Time::seconds(std::int64_t{45})};
  /// Jitter applied to every update broadcast.
  sim::Time broadcast_jitter{sim::Time::milliseconds(10)};
  /// Minimum spacing between triggered (incremental) updates.
  sim::Time min_triggered_gap{sim::Time::milliseconds(200)};
};

struct DsdvStats {
  std::uint64_t periodic_updates_sent{0};
  std::uint64_t triggered_updates_sent{0};
  std::uint64_t updates_received{0};
  std::uint64_t routes_broken{0};
  std::uint64_t data_forwarded{0};
  std::uint64_t data_no_route_dropped{0};
};

/// Destination-Sequenced Distance Vector routing: every node proactively
/// maintains a route to every destination via periodic full-table dumps
/// and triggered updates, with per-destination sequence numbers (even =
/// alive, odd = broken) guaranteeing loop freedom.
///
/// Included as the proactive baseline to AODV: it pays constant control
/// overhead so that the first data packet needs no route discovery — the
/// opposite end of the trade-off the paper's initial-packet delay sits on.
///
/// Simplification vs the full protocol (documented): no weighted settling
/// time — improvements are advertised at the next update rather than
/// damped. With the paper's static-or-slow topologies this changes
/// nothing measurable.
class Dsdv final : public net::RoutingAgent {
 public:
  Dsdv(net::Env& env, net::NodeId self, DsdvParams params = {});

  void route_output(net::Packet p) override;
  void route_input(net::Packet p) override;
  void set_deliver_callback(DeliverCallback cb) override { deliver_ = std::move(cb); }
  void attach_mac(net::MacLayer* mac) override;

  // --- introspection ---
  struct Entry {
    net::NodeId next_hop{net::kBroadcastAddress};
    std::uint32_t seqno{0};
    std::uint16_t metric{kInfinity};
    sim::Time updated{};
  };
  static constexpr std::uint16_t kInfinity = 0xffff;

  const Entry* route(net::NodeId dst) const;
  bool has_route(net::NodeId dst) const;
  const DsdvStats& stats() const noexcept { return stats_; }
  net::NodeId self() const noexcept { return self_; }

 private:
  void forward_data(net::Packet p);
  void send_full_update();
  void send_triggered_update();
  void broadcast_update(bool full);
  void handle_update(const net::Packet& p);
  void on_tx_fail(const net::Packet& p);
  void mark_broken_via(net::NodeId next_hop);
  void on_periodic();

  net::Env& env_;
  net::NodeId self_;
  DsdvParams params_;
  net::MacLayer* mac_{nullptr};
  DeliverCallback deliver_;

  std::unordered_map<net::NodeId, Entry> table_;
  std::uint32_t own_seqno_{0};
  bool dirty_{false};
  sim::Time last_triggered_{};

  sim::Timer periodic_timer_;
  sim::Timer triggered_timer_;

  DsdvStats stats_;
};

}  // namespace eblnet::routing
