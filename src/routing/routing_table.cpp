#include "routing/routing_table.hpp"

namespace eblnet::routing {

RouteEntry& RoutingTable::get_or_create(net::NodeId dst) {
  auto [it, inserted] = entries_.try_emplace(dst);
  if (inserted) it->second.dst = dst;
  return it->second;
}

RouteEntry* RoutingTable::find(net::NodeId dst) {
  const auto it = entries_.find(dst);
  return it == entries_.end() ? nullptr : &it->second;
}

const RouteEntry* RoutingTable::find(net::NodeId dst) const {
  const auto it = entries_.find(dst);
  return it == entries_.end() ? nullptr : &it->second;
}

RouteEntry* RoutingTable::lookup_valid(net::NodeId dst, sim::Time now) {
  RouteEntry* e = find(dst);
  if (e == nullptr || !e->valid) return nullptr;
  if (e->expires <= now) {
    e->valid = false;
    return nullptr;
  }
  return e;
}

std::size_t RoutingTable::purge(sim::Time now) {
  std::size_t n = 0;
  for (auto& [dst, e] : entries_) {
    if (e.valid && e.expires <= now) {
      e.valid = false;
      ++n;
    }
  }
  return n;
}

std::vector<RouteEntry*> RoutingTable::routes_via(net::NodeId next_hop) {
  std::vector<RouteEntry*> out;
  for (auto& [dst, e] : entries_) {
    if (e.valid && e.next_hop == next_hop) out.push_back(&e);
  }
  return out;
}

}  // namespace eblnet::routing
