#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace eblnet::routing {

/// Circular 32-bit sequence-number comparison (RFC 3561 §6.1):
/// returns true when `a` is fresher than `b`.
constexpr bool seqno_newer(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) > 0;
}

/// One AODV forwarding entry.
struct RouteEntry {
  net::NodeId dst{net::kBroadcastAddress};
  std::uint32_t seqno{0};
  bool seqno_valid{false};
  std::uint8_t hop_count{0};
  net::NodeId next_hop{net::kBroadcastAddress};
  sim::Time expires{};
  bool valid{false};
  /// Neighbours that route through us to `dst`; notified via RERR when
  /// the route breaks.
  std::set<net::NodeId> precursors;
};

/// AODV routing table. Entry lifetime is enforced by the owner (Aodv)
/// via `lookup_valid(now)` and `purge(now)` — the table itself holds no
/// timers so it is trivially unit-testable.
class RoutingTable {
 public:
  /// Entry for `dst`, creating an invalid placeholder if absent.
  RouteEntry& get_or_create(net::NodeId dst);

  /// Entry for `dst` or nullptr.
  RouteEntry* find(net::NodeId dst);
  const RouteEntry* find(net::NodeId dst) const;

  /// Valid, unexpired entry for `dst` or nullptr.
  RouteEntry* lookup_valid(net::NodeId dst, sim::Time now);

  /// Invalidate expired entries; returns how many were invalidated.
  std::size_t purge(sim::Time now);

  /// All valid entries whose next hop is `next_hop` (used on link break).
  std::vector<RouteEntry*> routes_via(net::NodeId next_hop);

  std::size_t size() const noexcept { return entries_.size(); }

  /// Iteration support (tests, diagnostics).
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }

 private:
  std::unordered_map<net::NodeId, RouteEntry> entries_;
};

}  // namespace eblnet::routing
