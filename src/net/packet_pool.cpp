#include "net/packet_pool.hpp"

#include <utility>
#include <variant>

namespace eblnet::net {

Packet* PacketPool::take_blank() {
  if (!free_.empty()) {
    Packet* p = free_.back();
    free_.pop_back();
    return p;
  }
  owned_.push_back(std::make_unique<Packet>());
  return owned_.back().get();
}

PooledPacket PacketPool::clone(const Packet& p) {
  Packet* shell = take_blank();
  shell->uid = p.uid;
  shell->type = p.type;
  shell->payload_bytes = p.payload_bytes;
  shell->created = p.created;
  shell->app_seq = p.app_seq;
  shell->prev_hop = p.prev_hop;
  shell->mac = p.mac;
  shell->ip = p.ip;
  shell->udp = p.udp;
  shell->tcp = p.tcp;
  if (p.aodv) {
    if (const auto* rerr = std::get_if<AodvRerrHeader>(&*p.aodv)) {
      // Seed the copy with a cached vector so assign() reuses its capacity.
      AodvRerrHeader h;
      if (!rerr_cache_.empty()) {
        h.unreachable = std::move(rerr_cache_.back());
        rerr_cache_.pop_back();
      }
      h.unreachable.assign(rerr->unreachable.begin(), rerr->unreachable.end());
      shell->aodv.emplace(std::move(h));
    } else {
      shell->aodv = p.aodv;  // RREQ/RREP/Hello: flat structs, no allocation
    }
  }
  if (p.dsdv) {
    DsdvUpdateHeader h;
    if (!route_cache_.empty()) {
      h.routes = std::move(route_cache_.back());
      route_cache_.pop_back();
    }
    h.routes.assign(p.dsdv->routes.begin(), p.dsdv->routes.end());
    shell->dsdv.emplace(std::move(h));
  }
  return PooledPacket{this, shell};
}

void PacketPool::release(Packet* p) noexcept {
  if (p == nullptr) return;
  // Harvest vector capacity before the reset below destroys the headers.
  if (p->aodv) {
    if (auto* rerr = std::get_if<AodvRerrHeader>(&*p->aodv);
        rerr != nullptr && rerr->unreachable.capacity() > 0 &&
        rerr_cache_.size() < kMaxCachedVectors) {
      rerr->unreachable.clear();
      rerr_cache_.push_back(std::move(rerr->unreachable));
    }
  }
  if (p->dsdv && p->dsdv->routes.capacity() > 0 && route_cache_.size() < kMaxCachedVectors) {
    p->dsdv->routes.clear();
    route_cache_.push_back(std::move(p->dsdv->routes));
  }
  *p = Packet{};
  free_.push_back(p);
}

}  // namespace eblnet::net
