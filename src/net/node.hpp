#pragma once

#include <map>
#include <memory>

#include "mobility/mobility_model.hpp"
#include "net/env.hpp"
#include "net/layers.hpp"
#include "net/packet.hpp"

namespace eblnet::net {

/// A network node: the hub that wires mobility, MAC (with its interface
/// queue), routing agent and transport endpoints together, mirroring the
/// NS-2 mobile-node stack (agent → routing → ifq → MAC → phy).
///
/// Layer objects are installed by a scenario builder; the Node owns MAC
/// and routing, shares ownership of the mobility model (a Platoon may
/// also hold it), and holds non-owning pointers to port handlers (the
/// transport agents own themselves via the scenario).
class Node {
 public:
  Node(Env& env, NodeId id) : env_{env}, id_{id} {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const noexcept { return id_; }
  Env& env() noexcept { return env_; }

  // --- mobility ---
  void set_mobility(std::shared_ptr<mobility::MobilityModel> m) { mobility_ = std::move(m); }
  mobility::MobilityModel* mobility() const noexcept { return mobility_.get(); }

  /// Position right now; origin when no mobility model is installed.
  mobility::Vec2 position() const {
    return mobility_ ? mobility_->position_at(env_.now()) : mobility::Vec2{};
  }

  // --- layers ---
  /// Install the MAC. Received packets flow to the routing agent.
  void set_mac(std::unique_ptr<MacLayer> mac);

  /// Install the routing agent. Locally-delivered packets flow to the
  /// port demux; the agent is attached to the MAC if one is present.
  void set_routing(std::unique_ptr<RoutingAgent> routing);

  MacLayer* mac() const noexcept { return mac_.get(); }
  RoutingAgent* routing() const noexcept { return routing_.get(); }

  // --- transport ---
  /// Bind `handler` to `port`. Throws if the port is taken.
  void bind_port(Port port, PortHandler* handler);
  void unbind_port(Port port) { ports_.erase(port); }

  /// Entry point for transport agents: send a locally-originated packet.
  /// The IP header must be set; routing takes it from here. While the
  /// node is crashed the packet is swallowed (traced as a "DWN" drop).
  void send(Packet p);

  // --- fault state ---
  /// Crash (`up == false`) or reboot this node: cascades into the MAC
  /// (timers cancelled, interface queue flushed) and the routing agent
  /// (state reset). The phy is powered off separately by the scenario's
  /// fault hook, since the Node does not own it.
  void set_up(bool up);
  bool up() const noexcept { return up_; }

 private:
  void wire();
  void deliver(Packet p);

  Env& env_;
  NodeId id_;
  std::shared_ptr<mobility::MobilityModel> mobility_;
  std::unique_ptr<MacLayer> mac_;
  std::unique_ptr<RoutingAgent> routing_;
  std::map<Port, PortHandler*> ports_;
  bool up_{true};
};

}  // namespace eblnet::net
