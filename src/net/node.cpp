#include "net/node.hpp"

#include <stdexcept>

namespace eblnet::net {

void Node::set_mac(std::unique_ptr<MacLayer> mac) {
  mac_ = std::move(mac);
  wire();
}

void Node::set_routing(std::unique_ptr<RoutingAgent> routing) {
  routing_ = std::move(routing);
  routing_->set_deliver_callback([this](Packet p) { deliver(std::move(p)); });
  wire();
}

void Node::wire() {
  if (mac_ && routing_) {
    mac_->set_rx_callback([this](Packet p) { routing_->route_input(std::move(p)); });
    routing_->attach_mac(mac_.get());
  }
}

void Node::bind_port(Port port, PortHandler* handler) {
  if (handler == nullptr) throw std::invalid_argument{"Node: null port handler"};
  const auto [it, inserted] = ports_.emplace(port, handler);
  (void)it;
  if (!inserted) throw std::logic_error{"Node: port already bound"};
}

void Node::send(Packet p) {
  if (!p.ip) throw std::logic_error{"Node::send: packet lacks an IP header"};
  if (!routing_) throw std::logic_error{"Node::send: no routing agent installed"};
  if (!up_) {
    env_.trace(TraceAction::kDrop, TraceLayer::kAgent, id_, p, "DWN");
    env_.metrics().add(id_, sim::Counter::kFaultTxSuppressed);
    return;
  }
  routing_->route_output(std::move(p));
}

void Node::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (mac_) mac_->set_link_up(up);
  if (routing_) routing_->set_node_up(up);
}

void Node::deliver(Packet p) {
  Port dport = 0;
  if (p.udp) {
    dport = p.udp->dport;
  } else if (p.tcp) {
    dport = p.tcp->dport;
  } else {
    env_.trace(TraceAction::kDrop, TraceLayer::kAgent, id_, p, "NOPORT");
    return;
  }
  const auto it = ports_.find(dport);
  if (it == ports_.end()) {
    env_.trace(TraceAction::kDrop, TraceLayer::kAgent, id_, p, "NOPORT");
    return;
  }
  it->second->recv(std::move(p));
}

}  // namespace eblnet::net
