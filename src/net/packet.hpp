#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "sim/time.hpp"

namespace eblnet::net {

/// Flat node addressing, NS-2 style: a node's network address, MAC
/// address and node id are the same small integer.
using NodeId = std::uint32_t;
inline constexpr NodeId kBroadcastAddress = 0xffff'ffff;

using Port = std::uint16_t;

enum class PacketType : std::uint8_t {
  kUdpData,
  kTcpData,
  kTcpAck,
  kAodvRreq,
  kAodvRrep,
  kAodvRerr,
  kAodvHello,
  kDsdvUpdate,
  kArpRequest,
  kArpReply,
  kMacAck,
  kMacRts,
  kMacCts,
  kNoise,   ///< jammer emissions: pure channel energy, never delivered up
  kBeacon,  ///< periodic CAM/BSM broadcast (single-hop, never routed)
};

const char* to_string(PacketType t) noexcept;

/// Routing-control packets get priority in the interface queue
/// (NS-2's Queue/DropTail/PriQueue behaviour the paper configures).
constexpr bool is_routing_control(PacketType t) noexcept {
  return t == PacketType::kAodvRreq || t == PacketType::kAodvRrep ||
         t == PacketType::kAodvRerr || t == PacketType::kAodvHello ||
         t == PacketType::kDsdvUpdate;
}

constexpr bool is_mac_control(PacketType t) noexcept {
  return t == PacketType::kMacAck || t == PacketType::kMacRts || t == PacketType::kMacCts;
}

// ---------------------------------------------------------------------------
// Headers. All protocol headers live here (as in NS-2's packet header
// manager) so that any layer can inspect a packet without depending on the
// module that produced it. Sizes are accounted in Packet::size_bytes().
// ---------------------------------------------------------------------------

struct MacHeader {
  NodeId src{kBroadcastAddress};
  NodeId dst{kBroadcastAddress};
  /// NAV reservation carried by RTS/CTS/data frames (802.11 duration field).
  sim::Time duration{};
  /// Retry flag (set on MAC-level retransmissions).
  bool retry{false};
};

struct Ipv4Header {
  NodeId src{kBroadcastAddress};
  NodeId dst{kBroadcastAddress};
  std::uint8_t ttl{32};
  static constexpr std::size_t kBytes = 20;
};

struct UdpHeader {
  Port sport{0};
  Port dport{0};
  static constexpr std::size_t kBytes = 8;
};

struct TcpHeader {
  Port sport{0};
  Port dport{0};
  /// Packet-based sequence number (NS-2 one-way TCP counts packets).
  std::int64_t seq{0};
  /// Cumulative ACK: highest in-order packet received (-1 = none).
  std::int64_t ack{-1};
  /// Echo of the data packet's send timestamp, for RTT sampling.
  sim::Time ts{};
  static constexpr std::size_t kBytes = 20;
};

struct AodvRreqHeader {
  std::uint8_t hop_count{0};
  std::uint32_t bcast_id{0};
  NodeId dst{kBroadcastAddress};
  std::uint32_t dst_seqno{0};
  bool dst_seqno_unknown{true};
  NodeId origin{kBroadcastAddress};
  std::uint32_t origin_seqno{0};
  static constexpr std::size_t kBytes = 24;
};

struct AodvRrepHeader {
  std::uint8_t hop_count{0};
  NodeId dst{kBroadcastAddress};  ///< route destination the RREP answers for
  std::uint32_t dst_seqno{0};
  NodeId origin{kBroadcastAddress};  ///< the RREQ originator this replies to
  sim::Time lifetime{};
  static constexpr std::size_t kBytes = 20;
};

struct AodvRerrHeader {
  struct Unreachable {
    NodeId dst;
    std::uint32_t seqno;
  };
  std::vector<Unreachable> unreachable;
  std::size_t bytes() const noexcept { return 12 + 8 * unreachable.size(); }
};

struct AodvHelloHeader {
  NodeId src{kBroadcastAddress};
  std::uint32_t seqno{0};
  static constexpr std::size_t kBytes = 20;
};

using AodvHeader = std::variant<AodvRreqHeader, AodvRrepHeader, AodvRerrHeader, AodvHelloHeader>;

/// DSDV routing update: a (possibly partial) table dump.
struct DsdvUpdateHeader {
  struct Route {
    NodeId dst;
    std::uint32_t seqno;
    std::uint16_t metric;
  };
  std::vector<Route> routes;
  std::size_t bytes() const noexcept { return 8 + 12 * routes.size(); }
};

// ---------------------------------------------------------------------------

/// A simulated packet. Value type: copies are independent (broadcast
/// reception hands each receiver its own copy).
class Packet {
 public:
  /// Globally unique per simulation (allocated by net::Env).
  std::uint64_t uid{0};
  PacketType type{PacketType::kUdpData};

  /// Application payload size; headers are accounted separately.
  std::size_t payload_bytes{0};

  /// Application-level birth time — survives forwarding and MAC
  /// retransmission, so sink-side `now - created` is the one-way delay.
  sim::Time created{};

  /// Per-flow application packet id (the "packet ID" of the paper's
  /// delay figures).
  std::uint64_t app_seq{0};

  /// Filled by the receiving MAC: who physically handed us this packet.
  NodeId prev_hop{kBroadcastAddress};

  /// 802.1D user priority (0-7). Only the EDCA MAC reads it, to map the
  /// frame onto an access category; the DCF and TDMA MACs ignore it.
  std::uint8_t priority{0};

  std::optional<MacHeader> mac;
  std::optional<Ipv4Header> ip;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<AodvHeader> aodv;
  std::optional<DsdvUpdateHeader> dsdv;

  /// Total on-air size: payload plus every attached header.
  /// The 802.11 data MAC overhead (34 B) is added by the MAC when
  /// computing airtime, not here, so queue byte-limits match NS-2.
  std::size_t size_bytes() const noexcept;

  /// One-line rendering for traces and debugging.
  std::string describe() const;
};

}  // namespace eblnet::net
