#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace eblnet::net {

class PacketPool;

/// Move-only RAII handle to a pool-owned Packet. Destroying (or
/// resetting) the handle returns the packet — and its header vectors'
/// capacity — to the pool. 16 bytes, so it fits comfortably inside an
/// InlineFunction capture where a by-value Packet would not.
class PooledPacket {
 public:
  PooledPacket() noexcept = default;
  PooledPacket(PacketPool* pool, Packet* p) noexcept : pool_{pool}, p_{p} {}

  PooledPacket(PooledPacket&& other) noexcept : pool_{other.pool_}, p_{other.p_} {
    other.pool_ = nullptr;
    other.p_ = nullptr;
  }

  PooledPacket& operator=(PooledPacket&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      p_ = other.p_;
      other.pool_ = nullptr;
      other.p_ = nullptr;
    }
    return *this;
  }

  PooledPacket(const PooledPacket&) = delete;
  PooledPacket& operator=(const PooledPacket&) = delete;

  ~PooledPacket() { reset(); }

  /// Return the packet to its pool; leaves *this empty.
  void reset() noexcept;

  Packet& operator*() const noexcept { return *p_; }
  Packet* operator->() const noexcept { return p_; }
  Packet* get() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

 private:
  PacketPool* pool_{nullptr};
  Packet* p_{nullptr};
};

/// Per-Env free-list of Packet storage (the NS-2 packet free-list idea).
///
/// `Packet` is a value type with six optional headers, two of which own
/// vectors, so every by-value copy on the broadcast fan-out used to heap-
/// allocate. The pool recycles whole Packet objects *and* the capacity of
/// the `AodvRerrHeader`/`DsdvUpdateHeader` vectors (harvested on release,
/// re-seeded on clone), so steady-state acquire/clone/release cycles
/// perform zero allocations once the pool has warmed up to the
/// simulation's peak in-flight packet count.
///
/// Ownership: the pool owns the storage forever (`owned_`); handles only
/// borrow. The pool must outlive every handle — `net::Env` declares its
/// pool before the scheduler so pending events whose captures hold
/// handles release into a live pool during teardown.
class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// A default-state packet (recycled storage, all fields reset).
  PooledPacket acquire() { return PooledPacket{this, take_blank()}; }

  /// Move `p`'s contents into a pooled shell (steals its vector storage).
  PooledPacket adopt(Packet&& p) {
    Packet* shell = take_blank();
    *shell = std::move(p);
    return PooledPacket{this, shell};
  }

  /// Copy `p` into a pooled shell, reusing cached vector capacity for the
  /// RERR/DSDV header vectors instead of allocating fresh ones.
  PooledPacket clone(const Packet& p);

  /// Return a packet to the free list (normally via PooledPacket). The
  /// packet is fully reset to default state; header-vector capacity is
  /// harvested into the caches first.
  void release(Packet* p) noexcept;

  std::size_t total_count() const noexcept { return owned_.size(); }
  std::size_t free_count() const noexcept { return free_.size(); }

 private:
  /// Bound on cached header vectors; beyond it, capacity is simply freed.
  static constexpr std::size_t kMaxCachedVectors = 64;

  Packet* take_blank();

  std::vector<std::unique_ptr<Packet>> owned_;
  std::vector<Packet*> free_;
  std::vector<std::vector<AodvRerrHeader::Unreachable>> rerr_cache_;
  std::vector<std::vector<DsdvUpdateHeader::Route>> route_cache_;
};

inline void PooledPacket::reset() noexcept {
  if (p_ != nullptr) {
    pool_->release(p_);
    pool_ = nullptr;
    p_ = nullptr;
  }
}

}  // namespace eblnet::net
