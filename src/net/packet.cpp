#include "net/packet.hpp"

#include <algorithm>
#include <cstdio>

namespace eblnet::net {

const char* to_string(PacketType t) noexcept {
  switch (t) {
    case PacketType::kUdpData: return "cbr";
    case PacketType::kTcpData: return "tcp";
    case PacketType::kTcpAck: return "ack";
    case PacketType::kAodvRreq: return "AODV_RREQ";
    case PacketType::kAodvRrep: return "AODV_RREP";
    case PacketType::kAodvRerr: return "AODV_RERR";
    case PacketType::kAodvHello: return "AODV_HELLO";
    case PacketType::kDsdvUpdate: return "DSDV";
    case PacketType::kArpRequest: return "ARP_REQ";
    case PacketType::kArpReply: return "ARP_REP";
    case PacketType::kMacAck: return "MAC_ACK";
    case PacketType::kMacRts: return "MAC_RTS";
    case PacketType::kMacCts: return "MAC_CTS";
    case PacketType::kNoise: return "NOISE";
    case PacketType::kBeacon: return "BEACON";
  }
  return "?";
}

std::size_t Packet::size_bytes() const noexcept {
  std::size_t n = payload_bytes;
  if (ip) n += Ipv4Header::kBytes;
  if (udp) n += UdpHeader::kBytes;
  if (tcp) n += TcpHeader::kBytes;
  if (dsdv) n += dsdv->bytes();
  if (aodv) {
    n += std::visit(
        [](const auto& h) -> std::size_t {
          using T = std::decay_t<decltype(h)>;
          if constexpr (std::is_same_v<T, AodvRerrHeader>) {
            return h.bytes();
          } else {
            return T::kBytes;
          }
        },
        *aodv);
  }
  return n;
}

std::string Packet::describe() const {
  char buf[128];
  const NodeId src = ip ? ip->src : (mac ? mac->src : kBroadcastAddress);
  const NodeId dst = ip ? ip->dst : (mac ? mac->dst : kBroadcastAddress);
  const int n = std::snprintf(buf, sizeof buf, "#%llu %s %zuB %u->%u seq=%llu",
                              static_cast<unsigned long long>(uid), to_string(type), size_bytes(),
                              src, dst, static_cast<unsigned long long>(app_seq));
  // Construct once with the exact length (snprintf reports the untruncated
  // length, so clamp to the buffer).
  const std::size_t len = n < 0 ? 0 : std::min(static_cast<std::size_t>(n), sizeof buf - 1);
  return std::string(buf, len);
}

}  // namespace eblnet::net
