#pragma once

#include <functional>
#include <optional>

#include "net/packet.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"

namespace eblnet::net {

/// Interface queue between the routing layer and the MAC (NS-2's `ifq`).
/// Implementations: queue::DropTailQueue, queue::PriQueue.
class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  /// Returns false when the packet was dropped (queue full); the drop
  /// callback has then already been invoked.
  virtual bool enqueue(Packet p) = 0;

  virtual std::optional<Packet> dequeue() = 0;
  virtual const Packet* peek() const = 0;

  /// Remove every queued packet whose MAC destination equals `next_hop`
  /// (used by AODV after a link failure). Returns the removed packets.
  virtual std::vector<Packet> remove_by_next_hop(NodeId next_hop) = 0;

  /// Drain the entire queue (injected node crash). The drained packets
  /// are counted under Counter::kIfqFaultFlushed — distinct from drops
  /// and routing removals — and returned so the MAC can trace them.
  virtual std::vector<Packet> flush_all() = 0;

  virtual std::size_t length() const = 0;
  virtual std::uint64_t drop_count() const = 0;
  bool empty() const { return length() == 0; }

  using DropCallback = std::function<void(const Packet&, const char* reason)>;
  virtual void set_drop_callback(DropCallback cb) = 0;

  /// Point the queue at a metrics registry, scoped to `node` (done by
  /// MacBase when it adopts the queue). Null detaches.
  void bind_metrics(sim::MetricsRegistry* m, NodeId node) noexcept {
    metrics_ = m;
    metrics_node_ = node;
  }

  /// Point the queue at the fault controller so queue-chaos faults can
  /// corrupt/reorder arriving packets (done by MacBase alongside
  /// bind_metrics). Null detaches.
  void bind_faults(sim::FaultController* f, NodeId node) noexcept {
    faults_ = f;
    faults_node_ = node;
  }

 protected:
  /// Counter bump for implementations; a no-op branch until bound.
  void metric(sim::Counter c, std::uint64_t delta = 1) noexcept {
    if (metrics_ != nullptr) metrics_->add(metrics_node_, c, delta);
  }
  void metric_sample(sim::Gauge g, double v) noexcept {
    if (metrics_ != nullptr) metrics_->sample(metrics_node_, g, v);
  }

  /// Chaos verdict for one arriving packet; kNone unless a queue-chaos
  /// fault is active on this node right now.
  sim::FaultController::ChaosAction chaos_verdict() noexcept {
    if (faults_ == nullptr || !faults_->queue_chaos_active(faults_node_))
      return sim::FaultController::ChaosAction::kNone;
    return faults_->chaos_draw(faults_node_);
  }

 private:
  sim::MetricsRegistry* metrics_{nullptr};
  NodeId metrics_node_{0};
  sim::FaultController* faults_{nullptr};
  NodeId faults_node_{0};
};

/// Link layer seen from above. Implementations: mac::Mac80211, mac::MacTdma.
///
/// The MAC owns its interface queue; `enqueue` is the single entry point
/// for outgoing traffic (the packet's MacHeader.dst selects unicast
/// next-hop or broadcast). Delivery upward goes through the rx callback;
/// unicast transmit failure (retry limit) through the tx-fail callback,
/// which AODV uses for link-layer failure detection.
class MacLayer {
 public:
  virtual ~MacLayer() = default;

  virtual void enqueue(Packet p) = 0;

  using RxCallback = std::function<void(Packet)>;
  virtual void set_rx_callback(RxCallback cb) = 0;

  using TxFailCallback = std::function<void(const Packet&)>;
  virtual void set_tx_fail_callback(TxFailCallback cb) = 0;

  virtual NodeId address() const = 0;

  /// True when this MAC reports unicast delivery failures via the
  /// tx-fail callback (802.11 does; TDMA has no ACKs, so AODV must run
  /// HELLO-based neighbour detection instead).
  virtual bool detects_link_failures() const = 0;

  /// Flush queued data packets destined to `next_hop` (route broke).
  virtual std::vector<Packet> flush_next_hop(NodeId next_hop) = 0;

  /// Injected node crash (`up == false`): cancel pending MAC timers,
  /// reset protocol state and flush the interface queue; `up == true`
  /// restarts the MAC from a cold state (reboot). Default: ignore.
  virtual void set_link_up(bool up) { (void)up; }

  /// The interface queue feeding this MAC, when it has one (decorators
  /// forward to the wrapped MAC). Used by the metrics snapshot to account
  /// for packets still queued at the end of a run.
  virtual const PacketQueue* interface_queue() const noexcept { return nullptr; }
};

/// Network layer. Implementations: routing::Aodv, routing::StaticRouting.
class RoutingAgent {
 public:
  virtual ~RoutingAgent() = default;

  /// Packet originating at this node (IP header already set).
  virtual void route_output(Packet p) = 0;

  /// Packet handed up by the MAC (may be forwarded or delivered locally).
  virtual void route_input(Packet p) = 0;

  using DeliverCallback = std::function<void(Packet)>;
  virtual void set_deliver_callback(DeliverCallback cb) = 0;

  virtual void attach_mac(MacLayer* mac) = 0;

  /// Injected node crash/reboot. Down: forget every route, neighbour and
  /// buffered packet (a rebooted router must re-discover, per the fault
  /// model). Up: restart periodic behaviour (e.g. HELLO). Default: ignore.
  virtual void set_node_up(bool up) { (void)up; }
};

/// A transport endpoint bound to a port (NS-2 "agent").
class PortHandler {
 public:
  virtual ~PortHandler() = default;
  virtual void recv(Packet p) = 0;
};

}  // namespace eblnet::net
