#include "net/trace_sink.hpp"

namespace eblnet::net {

const char* to_string(TraceAction a) noexcept {
  switch (a) {
    case TraceAction::kSend: return "s";
    case TraceAction::kRecv: return "r";
    case TraceAction::kDrop: return "D";
    case TraceAction::kForward: return "f";
  }
  return "?";
}

const char* to_string(TraceLayer l) noexcept {
  switch (l) {
    case TraceLayer::kAgent: return "AGT";
    case TraceLayer::kRouter: return "RTR";
    case TraceLayer::kIfq: return "IFQ";
    case TraceLayer::kMac: return "MAC";
    case TraceLayer::kPhy: return "PHY";
  }
  return "?";
}

}  // namespace eblnet::net
