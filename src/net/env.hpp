#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet_pool.hpp"
#include "net/trace_sink.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace eblnet::net {

/// Shared simulation environment: the clock/event queue, the random
/// stream, the packet uid allocator and the trace sink. One Env per
/// simulation; every node and layer holds a reference to it, which keeps
/// uid allocation and randomness per-simulation (two simulations in one
/// process are fully independent and reproducible).
class Env {
 public:
  explicit Env(std::uint64_t seed = 1) : rng_{seed}, seed_{seed} {}

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  sim::Rng& rng() noexcept { return rng_; }

  /// Switch per-node draws (MAC backoff, routing jitter, flood jitter,
  /// RED) from the shared run stream to independent per-node streams
  /// seeded mix_seed(seed, node). Off by default: rng_for then returns
  /// the shared stream and the simulation is bit-identical to a build
  /// without this feature. The sharded runner forces it on — per-node
  /// streams make a node's draw sequence independent of global event
  /// interleaving, which is what lets a space-sharded run reproduce the
  /// serial one exactly. Must be enabled before the first rng_for draw.
  void enable_node_rng_streams() { node_streams_ = true; }
  bool node_rng_streams() const noexcept { return node_streams_; }

  /// The random stream a node's layers should draw from: the shared run
  /// stream, or the node's own stream (stable address) when per-node
  /// streams are enabled.
  sim::Rng& rng_for(NodeId node) {
    if (!node_streams_) return rng_;
    if (node_rngs_.size() <= node) node_rngs_.resize(static_cast<std::size_t>(node) + 1);
    auto& slot = node_rngs_[node];
    if (!slot) slot = std::make_unique<sim::Rng>(sim::mix_seed(seed_, node));
    return *slot;
  }
  sim::Time now() const noexcept { return scheduler_.now(); }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Fault-injection controller; quiescent (single-branch queries) until
  /// a non-empty plan is installed.
  sim::FaultController& faults() noexcept { return faults_; }
  const sim::FaultController& faults() const noexcept { return faults_; }

  /// Validate and schedule `plan` (a no-op for the default empty plan).
  void install_faults(const sim::FaultPlan& plan) {
    faults_.install(plan, scheduler_, &metrics_, seed_);
  }

  /// Per-layer counter/gauge registry. Disabled by default: every
  /// `metrics().add(...)` on the packet hot path is then a single branch
  /// (and compiles out entirely under EBLNET_METRICS_DISABLED).
  sim::MetricsRegistry& metrics() noexcept { return metrics_; }
  const sim::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Free-list of Packet storage for the broadcast fan-out and any
  /// scheduled closure that would otherwise capture a Packet by value.
  PacketPool& packet_pool() noexcept { return pool_; }

  std::uint64_t alloc_uid() noexcept {
    const std::uint64_t uid = next_uid_;
    next_uid_ += uid_stride_;
    return uid;
  }

  /// Stride the uid allocator over `stride` interleaved lanes, taking
  /// lane `offset`: shard s of K allocates s+1, s+1+K, s+1+2K, ... so
  /// uids stay globally unique across per-shard Envs (a packet cloned
  /// over a seam keeps its uid, and trace analyzers match send/recv
  /// records by uid). The default (stride 1, offset 0) is today's 1,2,3.
  void set_uid_stride(std::uint64_t stride, std::uint64_t offset) {
    next_uid_ = 1 + offset;
    uid_stride_ = stride;
  }

  void set_trace_sink(TraceSink* sink) noexcept { trace_ = sink; }
  TraceSink* trace_sink() const noexcept { return trace_; }

  /// Emit a trace record for `p` as seen at `layer` on `node`. When no
  /// sink is attached this is a branch and nothing else — no string is
  /// built and no packet field is inspected, so tracing-off simulations
  /// pay (almost) nothing on the packet hot path.
  void trace(TraceAction action, TraceLayer layer, NodeId node, const Packet& p,
             const char* reason = nullptr) {
    if (trace_ == nullptr) return;
    TraceRecord r;
    r.t = scheduler_.now();
    r.action = action;
    r.layer = layer;
    r.node = node;
    r.uid = p.uid;
    r.type = p.type;
    r.size = p.size_bytes();
    if (p.ip) {
      r.ip_src = p.ip->src;
      r.ip_dst = p.ip->dst;
    }
    r.app_seq = p.app_seq;
    if (reason != nullptr) r.reason = reason;
    trace_->record(r);
  }

 private:
  // The pool is declared before the scheduler so it is destroyed *after*
  // it: pending events whose captures hold PooledPacket handles release
  // them into a still-live pool during teardown.
  PacketPool pool_;
  sim::Scheduler scheduler_;
  sim::Rng rng_;
  sim::MetricsRegistry metrics_;
  sim::FaultController faults_;
  TraceSink* trace_{nullptr};
  std::uint64_t next_uid_{1};
  std::uint64_t uid_stride_{1};
  std::uint64_t seed_{1};
  bool node_streams_{false};
  std::vector<std::unique_ptr<sim::Rng>> node_rngs_;  ///< lazily built, stable addresses
};

}  // namespace eblnet::net
