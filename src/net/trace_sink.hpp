#pragma once

#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace eblnet::net {

/// What happened to the packet.
enum class TraceAction : std::uint8_t { kSend, kRecv, kDrop, kForward };

/// Which layer reported it (NS-2's AGT / RTR / IFQ / MAC / PHY columns).
enum class TraceLayer : std::uint8_t { kAgent, kRouter, kIfq, kMac, kPhy };

const char* to_string(TraceAction a) noexcept;
const char* to_string(TraceLayer l) noexcept;

/// One line of the simulation trace. The offline analyzers (one-way
/// delay, drop accounting) consume these, mirroring how the paper parses
/// the NS-2 trace file.
///
/// Trivially copyable by design: simulations emit millions of records,
/// and trace::TraceStore keeps them in flat arena chunks. `reason` is a
/// string_view because every producer passes a string literal (see
/// Env::trace); parsed traces intern their reasons (trace_io). Anything
/// stored here must outlive the record.
struct TraceRecord {
  sim::Time t{};
  TraceAction action{TraceAction::kSend};
  TraceLayer layer{TraceLayer::kAgent};
  NodeId node{0};
  std::uint64_t uid{0};
  PacketType type{PacketType::kUdpData};
  std::size_t size{0};
  NodeId ip_src{kBroadcastAddress};
  NodeId ip_dst{kBroadcastAddress};
  std::uint64_t app_seq{0};
  std::string_view reason;  ///< drop reason ("IFQ", "RET", "TTL", ...); empty otherwise
};

/// Receives every trace record as it happens. Implemented by
/// trace::TraceManager; a null sink is permitted (tracing off).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& r) = 0;
};

}  // namespace eblnet::net
