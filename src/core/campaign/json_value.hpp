#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eblnet::core::campaign {

/// Parsed JSON document — the read side of the run cache. core::JsonWriter
/// emits the manifests; this recursive-descent parser loads them back
/// without a third-party dependency. It is deliberately strict (one
/// document, fully consumed, no extensions): a cache entry that fails to
/// parse for any reason is treated as corrupt and evicted.
///
/// Numbers keep their exact integer identity when they have one: an
/// unsigned integral token round-trips any u64 (sequence numbers,
/// counters), a signed one any i64 (nanosecond timestamps); everything
/// else goes through strtod, which inverts the writer's 17-significant-
/// digit rendering exactly. "-0" is stored as the double -0.0 so a
/// re-render preserves the sign.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kU64, kI64, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered members (duplicate keys keep the first).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept {
    return kind_ == Kind::kU64 || kind_ == Kind::kI64 || kind_ == Kind::kDouble;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return b_; }
  /// Numeric views. as_double() on null returns NaN — the writer emits
  /// non-finite doubles as null, so null *is* the non-finite encoding.
  double as_double() const noexcept;
  std::uint64_t as_u64() const noexcept;
  std::int64_t as_i64() const noexcept;
  const std::string& as_string() const noexcept { return str_; }
  const Array& as_array() const noexcept { return arr_; }
  const Object& as_object() const noexcept { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;

  // --- construction (used by the parser and tests) ---
  static JsonValue null() { return JsonValue{}; }
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue number(std::uint64_t v);
  static JsonValue number(std::int64_t v);
  static JsonValue string(std::string v);
  static JsonValue array(Array v);
  static JsonValue object(Object v);

 private:
  Kind kind_{Kind::kNull};
  bool b_{false};
  double d_{0.0};
  std::uint64_t u_{0};
  std::int64_t i_{0};
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse one JSON document. Returns nullopt on any syntax error, partial
/// document, or trailing garbage (whitespace excepted) — the cache's
/// corruption signal.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace eblnet::core::campaign
