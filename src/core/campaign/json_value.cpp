#include "core/campaign/json_value.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace eblnet::core::campaign {

double JsonValue::as_double() const noexcept {
  switch (kind_) {
    case Kind::kU64: return static_cast<double>(u_);
    case Kind::kI64: return static_cast<double>(i_);
    case Kind::kDouble: return d_;
    case Kind::kNull: return std::numeric_limits<double>::quiet_NaN();
    default: return 0.0;
  }
}

std::uint64_t JsonValue::as_u64() const noexcept {
  switch (kind_) {
    case Kind::kU64: return u_;
    case Kind::kI64: return i_ >= 0 ? static_cast<std::uint64_t>(i_) : 0;
    case Kind::kDouble: return d_ >= 0.0 ? static_cast<std::uint64_t>(d_) : 0;
    default: return 0;
  }
}

std::int64_t JsonValue::as_i64() const noexcept {
  switch (kind_) {
    case Kind::kU64:
      return u_ <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())
                 ? static_cast<std::int64_t>(u_)
                 : std::numeric_limits<std::int64_t>::max();
    case Kind::kI64: return i_;
    case Kind::kDouble: return static_cast<std::int64_t>(d_);
    default: return 0;
  }
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.b_ = v;
  return j;
}
JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kDouble;
  j.d_ = v;
  return j;
}
JsonValue JsonValue::number(std::uint64_t v) {
  JsonValue j;
  j.kind_ = Kind::kU64;
  j.u_ = v;
  return j;
}
JsonValue JsonValue::number(std::int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kI64;
  j.i_ = v;
  return j;
}
JsonValue JsonValue::string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}
JsonValue JsonValue::array(Array v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.arr_ = std::move(v);
  return j;
}
JsonValue JsonValue::object(Object v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.obj_ = std::move(v);
  return j;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view s) : s_{s} {}

  std::optional<JsonValue> run() {
    auto v = value(0);
    if (!v) return std::nullopt;
    ws();
    if (i_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  /// Container depth guard: the writer nests a handful of levels, so a
  /// deeply recursive document is corruption, not data.
  static constexpr int kMaxDepth = 64;

  void ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }
  bool eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(i_, word.size()) != word) return false;
    i_ += word.size();
    return true;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth >= kMaxDepth) return std::nullopt;
    ws();
    if (i_ >= s_.size()) return std::nullopt;
    switch (s_[i_]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        return JsonValue::string(std::move(*s));
      }
      case 't': return literal("true") ? std::optional{JsonValue::boolean(true)} : std::nullopt;
      case 'f': return literal("false") ? std::optional{JsonValue::boolean(false)} : std::nullopt;
      case 'n': return literal("null") ? std::optional{JsonValue::null()} : std::nullopt;
      default: return number();
    }
  }

  std::optional<JsonValue> object(int depth) {
    ++i_;  // '{'
    JsonValue::Object members;
    ws();
    if (eat('}')) return JsonValue::object(std::move(members));
    while (true) {
      ws();
      auto key = string();
      if (!key) return std::nullopt;
      ws();
      if (!eat(':')) return std::nullopt;
      auto v = value(depth + 1);
      if (!v) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*v));
      ws();
      if (eat(',')) continue;
      if (eat('}')) return JsonValue::object(std::move(members));
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array(int depth) {
    ++i_;  // '['
    JsonValue::Array elements;
    ws();
    if (eat(']')) return JsonValue::array(std::move(elements));
    while (true) {
      auto v = value(depth + 1);
      if (!v) return std::nullopt;
      elements.push_back(std::move(*v));
      ws();
      if (eat(',')) continue;
      if (eat(']')) return JsonValue::array(std::move(elements));
      return std::nullopt;
    }
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') {
        ++i_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;  // raw control char
      if (c != '\\') {
        out += c;
        ++i_;
        continue;
      }
      ++i_;
      if (i_ >= s_.size()) return std::nullopt;
      switch (s_[i_++]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) return std::nullopt;
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          // Surrogates never appear in the writer's output (it only
          // escapes control characters); reject rather than guess.
          if (cp >= 0xd800 && cp <= 0xdfff) return std::nullopt;
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  bool digit_run() {
    if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9') return false;
    while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') ++i_;
    return true;
  }

  std::optional<JsonValue> number() {
    // Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — no leading '+', no leading zeros, no bare '.'.
    const std::size_t start = i_;
    eat('-');
    if (eat('0')) {
      // A zero integer part takes no further digits.
    } else if (!digit_run()) {
      return std::nullopt;
    }
    bool integral = true;
    if (eat('.')) {
      integral = false;
      if (!digit_run()) return std::nullopt;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      integral = false;
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (!digit_run()) return std::nullopt;
    }
    // Null-terminated copy for the strto* family.
    const std::string token{s_.substr(start, i_ - start)};
    char* end = nullptr;
    errno = 0;
    if (integral && token[0] != '-') {
      const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno == 0)
        return JsonValue::number(static_cast<std::uint64_t>(u));
    } else if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno == 0) {
        // "-0" must round-trip as the double -0.0, not the integer 0.
        if (v == 0) return JsonValue::number(-0.0);
        return JsonValue::number(static_cast<std::int64_t>(v));
      }
    }
    errno = 0;
    end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    if (!std::isfinite(d)) return std::nullopt;  // overflowed literal
    return JsonValue::number(d);
  }

  std::string_view s_;
  std::size_t i_{0};
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) { return Parser{text}.run(); }

}  // namespace eblnet::core::campaign
