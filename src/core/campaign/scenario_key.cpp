#include "core/campaign/scenario_key.hpp"

#include <cinttypes>
#include <cstdio>

namespace eblnet::core::campaign {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kFnvBasisHi = 0xcbf29ce484222325ULL;  // standard offset basis
constexpr std::uint64_t kFnvBasisLo = 0x6c62272e07bb0142ULL;  // FNV-0 of a distinct tag

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Line-oriented canonical-text builder. Every emitter appends exactly
/// one "name = value\n" line; the fixed call order in build() below IS
/// the canonical field order.
class Canon {
 public:
  void line(std::string_view name, std::string_view v) {
    text_.append(name);
    text_.append(" = ");
    text_.append(v);
    text_.push_back('\n');
  }
  void str(std::string_view name, const char* v) { line(name, v); }
  void u64(std::string_view name, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    line(name, buf);
  }
  void i64(std::string_view name, std::int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    line(name, buf);
  }
  void boolean(std::string_view name, bool v) { line(name, v ? "true" : "false"); }
  void real(std::string_view name, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    line(name, buf);
  }
  void time_ns(std::string_view name, sim::Time t) { i64(name, t.ns()); }

  std::string take() { return std::move(text_); }

 private:
  std::string text_;
};

}  // namespace

std::string Key::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016" PRIx64 "%016" PRIx64, hi, lo);
  return buf;
}

std::string canonical_scenario_text(const ScenarioConfig& cfg, std::size_t shards) {
  Canon c;
  c.str("format", "eblnet.scenario/1");
  c.u64("shards", static_cast<std::uint64_t>(shards));

  // --- the paper's variable parameters ---
  c.u64("packet_bytes", static_cast<std::uint64_t>(cfg.packet_bytes));
  c.str("mac", to_string(cfg.mac));
  c.str("routing", to_string(cfg.routing));

  c.boolean("use_arp", cfg.use_arp);
  if (cfg.use_arp) {
    c.time_ns("arp.retry_interval_ns", cfg.arp.retry_interval);
    c.u64("arp.max_retries", cfg.arp.max_retries);
    c.u64("arp.request_bytes", static_cast<std::uint64_t>(cfg.arp.request_bytes));
    c.u64("arp.reply_bytes", static_cast<std::uint64_t>(cfg.arp.reply_bytes));
    c.u64("arp.hold_per_destination", static_cast<std::uint64_t>(cfg.arp.hold_per_destination));
    c.boolean("arp.passive_learning", cfg.arp.passive_learning);
  }

  // --- the paper's fixed parameters ---
  c.u64("platoon_size", static_cast<std::uint64_t>(cfg.platoon_size));
  c.real("speed_mps", cfg.speed_mps);
  c.real("vehicle_gap_m", cfg.vehicle_gap_m);
  c.real("decel_mps2", cfg.decel_mps2);
  c.u64("ifq_capacity", static_cast<std::uint64_t>(cfg.ifq_capacity));

  c.boolean("use_red_queue", cfg.use_red_queue);
  if (cfg.use_red_queue) {
    c.u64("red.capacity", static_cast<std::uint64_t>(cfg.red.capacity));
    c.real("red.min_thresh", cfg.red.min_thresh);
    c.real("red.max_thresh", cfg.red.max_thresh);
    c.real("red.max_p", cfg.red.max_p);
    c.real("red.weight", cfg.red.weight);
    c.boolean("red.protect_routing", cfg.red.protect_routing);
  }

  // --- geometry / timing (the zero-means-auto depart is resolved) ---
  c.time_ns("platoon1_brake_at_ns", cfg.platoon1_brake_at);
  c.time_ns("platoon2_depart_ns", cfg.resolved_platoon2_depart());
  c.time_ns("duration_ns", cfg.duration);

  // --- traffic (EblScenario forces both payload sizes to packet_bytes) ---
  c.u64("ebl.packet_bytes", static_cast<std::uint64_t>(cfg.packet_bytes));
  c.real("ebl.cbr_rate_bps", cfg.ebl.cbr_rate_bps);
  c.u64("ebl.tcp.flavor", static_cast<std::uint64_t>(cfg.ebl.tcp.flavor));
  c.u64("ebl.tcp.packet_size", static_cast<std::uint64_t>(cfg.packet_bytes));
  c.real("ebl.tcp.initial_window", cfg.ebl.tcp.initial_window);
  c.real("ebl.tcp.max_window", cfg.ebl.tcp.max_window);
  c.real("ebl.tcp.initial_ssthresh", cfg.ebl.tcp.initial_ssthresh);
  c.u64("ebl.tcp.dupack_threshold", cfg.ebl.tcp.dupack_threshold);
  c.time_ns("ebl.tcp.min_rto_ns", cfg.ebl.tcp.min_rto);
  c.time_ns("ebl.tcp.max_rto_ns", cfg.ebl.tcp.max_rto);
  c.time_ns("ebl.tcp.initial_rto_ns", cfg.ebl.tcp.initial_rto);
  c.u64("ebl.tcp.max_backoff", cfg.ebl.tcp.max_backoff);
  c.boolean("ebl.sink.delayed_ack", cfg.ebl.sink.delayed_ack);
  c.time_ns("ebl.sink.ack_delay_ns", cfg.ebl.sink.ack_delay);

  // --- closed-loop braking ---
  c.boolean("reactive.enabled", cfg.reactive.enabled);
  if (cfg.reactive.enabled) {
    c.real("reactive.decel_mps2", cfg.reactive.decel_mps2);
    c.time_ns("reactive.reaction_ns", cfg.reactive.reaction);
    c.real("reactive.min_gap_m", cfg.reactive.min_gap_m);
  }

  // --- CAM/BSM beaconing ---
  c.boolean("beacon.enabled", cfg.beacon.enabled);
  if (cfg.beacon.enabled) {
    c.time_ns("beacon.interval_ns", cfg.beacon.interval);
    c.u64("beacon.payload_bytes", static_cast<std::uint64_t>(cfg.beacon.payload_bytes));
    c.u64("beacon.priority", cfg.beacon.priority);
    c.u64("beacon.port", cfg.beacon.port);
  }

  // --- the chosen MAC's parameters only ---
  if (cfg.mac == MacType::k80211) {
    const auto& m = cfg.mac80211;
    c.real("mac80211.data_rate_bps", m.data_rate_bps);
    c.real("mac80211.basic_rate_bps", m.basic_rate_bps);
    c.time_ns("mac80211.slot_time_ns", m.slot_time);
    c.time_ns("mac80211.sifs_ns", m.sifs);
    c.time_ns("mac80211.difs_ns", m.difs);
    c.time_ns("mac80211.plcp_overhead_ns", m.plcp_overhead);
    c.u64("mac80211.cw_min", m.cw_min);
    c.u64("mac80211.cw_max", m.cw_max);
    c.u64("mac80211.short_retry_limit", m.short_retry_limit);
    c.u64("mac80211.long_retry_limit", m.long_retry_limit);
    c.u64("mac80211.rts_threshold", static_cast<std::uint64_t>(m.rts_threshold));
    c.u64("mac80211.data_header_bytes", static_cast<std::uint64_t>(m.data_header_bytes));
    c.u64("mac80211.ack_bytes", static_cast<std::uint64_t>(m.ack_bytes));
    c.u64("mac80211.rts_bytes", static_cast<std::uint64_t>(m.rts_bytes));
    c.u64("mac80211.cts_bytes", static_cast<std::uint64_t>(m.cts_bytes));
    c.time_ns("mac80211.timeout_slack_ns", m.timeout_slack);
  } else if (cfg.mac == MacType::kEdca) {
    const auto& e = cfg.edca;
    c.real("edca.data_rate_bps", e.data_rate_bps);
    c.real("edca.basic_rate_bps", e.basic_rate_bps);
    c.time_ns("edca.slot_time_ns", e.slot_time);
    c.time_ns("edca.sifs_ns", e.sifs);
    c.time_ns("edca.plcp_overhead_ns", e.plcp_overhead);
    c.u64("edca.data_header_bytes", static_cast<std::uint64_t>(e.data_header_bytes));
    c.u64("edca.ack_bytes", static_cast<std::uint64_t>(e.ack_bytes));
    c.u64("edca.short_retry_limit", e.short_retry_limit);
    c.time_ns("edca.timeout_slack_ns", e.timeout_slack);
    c.u64("edca.ac_queue_capacity", static_cast<std::uint64_t>(e.ac_queue_capacity));
    for (std::size_t i = 0; i < mac::kAccessCategoryCount; ++i) {
      c.str("edca.ac", mac::to_string(static_cast<mac::AccessCategory>(i)));
      c.u64("edca.ac.aifsn", e.ac[i].aifsn);
      c.u64("edca.ac.cw_min", e.ac[i].cw_min);
      c.u64("edca.ac.cw_max", e.ac[i].cw_max);
    }
  } else {
    const auto& t = cfg.tdma;
    c.real("tdma.data_rate_bps", t.data_rate_bps);
    c.u64("tdma.num_slots", static_cast<std::uint64_t>(t.num_slots));
    c.u64("tdma.max_packet_bytes", static_cast<std::uint64_t>(t.max_packet_bytes));
    c.u64("tdma.data_header_bytes", static_cast<std::uint64_t>(t.data_header_bytes));
    c.time_ns("tdma.plcp_overhead_ns", t.plcp_overhead);
    c.time_ns("tdma.guard_time_ns", t.guard_time);
  }

  // --- phy / channel ---
  c.real("phy.tx_power_w", cfg.phy.tx_power_w);
  c.real("phy.rx_threshold_w", cfg.phy.rx_threshold_w);
  c.real("phy.cs_threshold_w", cfg.phy.cs_threshold_w);
  c.real("phy.capture_ratio", cfg.phy.capture_ratio);
  c.str("propagation", to_string(cfg.propagation));
  if (cfg.propagation == PropagationType::kNakagami) {
    c.real("nakagami_m", cfg.nakagami_m);
    c.boolean("nakagami_node_streams", cfg.nakagami_node_streams);
  }
  c.boolean("blockage.enabled", cfg.blockage.enabled);
  if (cfg.blockage.enabled) {
    c.real("blockage.half_width_m", cfg.blockage.half_width_m);
    c.real("blockage.corner_loss_db", cfg.blockage.corner_loss_db);
  }
  c.u64("channel.grid_min_phys", static_cast<std::uint64_t>(cfg.channel.grid_min_phys));
  c.real("channel.grid_max_speed_mps", cfg.channel.grid_max_speed_mps);
  c.time_ns("channel.grid_rebucket_period_ns", cfg.channel.grid_rebucket_period);
  c.boolean("channel.batch_cull", cfg.channel.batch_cull);

  // --- the chosen routing protocol's parameters only (static routes
  // have none) ---
  if (cfg.routing == RoutingType::kAodv) {
    const auto& a = cfg.aodv;
    c.time_ns("aodv.active_route_timeout_ns", a.active_route_timeout);
    c.time_ns("aodv.my_route_timeout_ns", a.my_route_timeout);
    c.time_ns("aodv.node_traversal_time_ns", a.node_traversal_time);
    c.u64("aodv.net_diameter", a.net_diameter);
    c.u64("aodv.rreq_retries", a.rreq_retries);
    c.u64("aodv.ttl_start", a.ttl_start);
    c.u64("aodv.ttl_increment", a.ttl_increment);
    c.u64("aodv.ttl_threshold", a.ttl_threshold);
    c.time_ns("aodv.hello_interval_ns", a.hello_interval);
    c.u64("aodv.allowed_hello_loss", a.allowed_hello_loss);
    c.boolean("aodv.hello_installs_routes", a.hello_installs_routes);
    c.u64("aodv.buffer_capacity", static_cast<std::uint64_t>(a.buffer_capacity));
    c.time_ns("aodv.buffer_timeout_ns", a.buffer_timeout);
    c.time_ns("aodv.broadcast_jitter_ns", a.broadcast_jitter);
    c.time_ns("aodv.bcast_id_save_ns", a.bcast_id_save);
  } else if (cfg.routing == RoutingType::kDsdv) {
    const auto& d = cfg.dsdv;
    c.time_ns("dsdv.periodic_update_interval_ns", d.periodic_update_interval);
    c.time_ns("dsdv.route_lifetime_ns", d.route_lifetime);
    c.time_ns("dsdv.broadcast_jitter_ns", d.broadcast_jitter);
    c.time_ns("dsdv.min_triggered_gap_ns", d.min_triggered_gap);
  }

  c.time_ns("throughput_sample_interval_ns", cfg.throughput_sample_interval);

  // --- determinism knobs ---
  c.u64("seed", cfg.seed);
  c.boolean("enable_trace", cfg.enable_trace);
  c.boolean("node_rng_streams", cfg.node_rng_streams);

  // --- fault plan (an empty plan is bit-identity, so it contributes
  // nothing — not even its rng_seed) ---
  c.boolean("faults.enabled", !cfg.faults.empty());
  if (!cfg.faults.empty()) {
    c.u64("faults.rng_seed", cfg.faults.rng_seed);
    c.u64("faults.event_count", static_cast<std::uint64_t>(cfg.faults.events.size()));
    for (const sim::FaultEvent& e : cfg.faults.events) {
      c.str("faults.event.kind", sim::to_string(e.kind));
      c.time_ns("faults.event.at_ns", e.at);
      c.time_ns("faults.event.duration_ns", e.duration);
      c.u64("faults.event.node", e.node);
      c.u64("faults.event.peer", e.peer);
      c.real("faults.event.magnitude", e.magnitude);
      c.real("faults.event.x", e.x);
      c.real("faults.event.y", e.y);
      c.real("faults.event.radius", e.radius);
      c.i64("faults.event.rf_channel", e.rf_channel);
      c.time_ns("faults.event.period_ns", e.period);
      c.time_ns("faults.event.burst_ns", e.burst);
    }
  }

  c.boolean("enable_metrics", cfg.enable_metrics);
  return c.take();
}

Key scenario_key(const ScenarioConfig& cfg, std::size_t shards) {
  const std::string text = canonical_scenario_text(cfg, shards);
  return Key{fnv1a(kFnvBasisHi, text), fnv1a(kFnvBasisLo, text)};
}

Key mix_fingerprint(Key k, std::string_view fingerprint) {
  // Continue both streams over the fingerprint (plus a separator so a
  // fingerprint can never alias trailing canonical text).
  k.hi = fnv1a(fnv1a(k.hi, "\x1f"), fingerprint);
  k.lo = fnv1a(fnv1a(k.lo, "\x1f"), fingerprint);
  return k;
}

}  // namespace eblnet::core::campaign
