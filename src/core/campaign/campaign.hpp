#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign/run_cache.hpp"
#include "core/runner.hpp"
#include "core/scenario_builder.hpp"

namespace eblnet::core::campaign {

/// One fully-configured point of a sweep.
struct Cell {
  std::string label;
  ScenarioConfig config;
};

/// One sweep dimension: named points that each mutate a ScenarioBuilder
/// (so any builder knob — seed, packet size, platoon size, propagation,
/// fault plan, ... — can be an axis). Axis and point names combine into
/// the cell labels ("seed=3/packet_bytes=500/...").
struct Axis {
  std::string name;
  using Mutator = std::function<void(ScenarioBuilder&)>;
  std::vector<std::pair<std::string, Mutator>> points;

  Axis& point(std::string label, Mutator m) {
    points.emplace_back(std::move(label), std::move(m));
    return *this;
  }
};

/// A sweep specification: a base scenario plus axes, expanded either as
/// the full cartesian grid or as a seeded random sample of it. Cell
/// order is deterministic (row-major over the axes in declaration order;
/// the last axis varies fastest), which is the order the campaign
/// manifest streams in.
struct SweepSpec {
  std::string name;
  ScenarioConfig base;
  std::vector<Axis> axes;

  Axis& axis(std::string axis_name) {
    axes.push_back(Axis{std::move(axis_name), {}});
    return axes.back();
  }

  /// The full cartesian grid.
  std::vector<Cell> grid() const;

  /// `n` cells drawn uniformly (with replacement) from the grid's index
  /// space by a self-contained xorshift stream — deterministic in
  /// (axes, n, seed) and independent of the scenario seeds.
  std::vector<Cell> sample(std::size_t n, std::uint64_t seed) const;
};

/// Outcome of one campaign run. `results` is in cell order; hit/miss
/// counts are this run's partition (the cache's counters keep totals
/// across runs).
struct CampaignOutcome {
  std::vector<TrialResult> results;
  std::uint64_t hits{0};
  std::uint64_t misses{0};
};

/// The sweep orchestrator: partitions cells into cache hits and misses,
/// multiplexes only the misses onto the PR-1 ThreadPool (via
/// core::Runner::start_trials), commits each finished miss, and — when
/// `manifest` is given — streams the aggregated "eblnet.campaign"
/// manifest in cell order as results land. The manifest carries no
/// hit/miss or timing data, so a warm re-run's bytes are identical to
/// the cold run's.
class Runner {
 public:
  /// `jobs`/`shards` resolve exactly as in core::Runner.
  explicit Runner(RunCache& cache, unsigned jobs = 0, std::size_t shards = 1);

  CampaignOutcome run(const SweepSpec& spec, std::ostream* manifest = nullptr);
  CampaignOutcome run_cells(const std::string& name, std::span<const Cell> cells,
                            std::ostream* manifest = nullptr);

  const RunCache& cache() const noexcept { return cache_; }

 private:
  RunCache& cache_;
  core::Runner runner_;
};

/// Drop-in cached equivalent of core::Runner{jobs, shards}.run_trials:
/// serve hits, simulate and commit misses, return results in spec order.
/// Existing sweep benches route through this behind their --cache flag;
/// the results (and therefore their reports) are byte-identical to the
/// uncached path.
std::vector<TrialResult> run_cached_trials(RunCache& cache, std::span<const TrialSpec> specs,
                                           unsigned jobs = 0, std::size_t shards = 1);

}  // namespace eblnet::core::campaign
