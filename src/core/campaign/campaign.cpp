#include "core/campaign/campaign.hpp"

#include <optional>
#include <ostream>

#include "core/json_writer.hpp"
#include "core/report.hpp"

namespace eblnet::core::campaign {

namespace {

std::uint64_t xorshift64(std::uint64_t& state) {
  // Marsaglia xorshift64*: enough randomness for index sampling, zero
  // dependencies, and the same stream on every platform.
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dULL;
}

Cell make_cell(const ScenarioConfig& base, const std::vector<Axis>& axes,
               const std::vector<std::size_t>& choice) {
  ScenarioBuilder b{base};
  std::string label;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const auto& [point_label, mutate] = axes[a].points[choice[a]];
    if (!label.empty()) label += '/';
    label += axes[a].name;
    label += '=';
    label += point_label;
    mutate(b);
  }
  return Cell{std::move(label), b.build()};
}

}  // namespace

std::vector<Cell> SweepSpec::grid() const {
  std::size_t count = 1;
  for (const Axis& a : axes) count *= a.points.size();  // empty axis -> empty grid
  if (axes.empty() || count == 0) return {};

  std::vector<Cell> cells;
  cells.reserve(count);
  std::vector<std::size_t> choice(axes.size(), 0);
  for (std::size_t i = 0; i < count; ++i) {
    cells.push_back(make_cell(base, axes, choice));
    // Row-major increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++choice[a] < axes[a].points.size()) break;
      choice[a] = 0;
    }
  }
  return cells;
}

std::vector<Cell> SweepSpec::sample(std::size_t n, std::uint64_t seed) const {
  if (axes.empty()) return {};
  for (const Axis& a : axes)
    if (a.points.empty()) return {};

  std::uint64_t state = seed ? seed : 0x9e3779b97f4a7c15ULL;
  std::vector<Cell> cells;
  cells.reserve(n);
  std::vector<std::size_t> choice(axes.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < axes.size(); ++a)
      choice[a] = static_cast<std::size_t>(xorshift64(state) % axes[a].points.size());
    cells.push_back(make_cell(base, axes, choice));
  }
  return cells;
}

Runner::Runner(RunCache& cache, unsigned jobs, std::size_t shards)
    : cache_{cache}, runner_{jobs, shards} {}

CampaignOutcome Runner::run(const SweepSpec& spec, std::ostream* manifest) {
  const std::vector<Cell> cells = spec.grid();
  return run_cells(spec.name, cells, manifest);
}

CampaignOutcome Runner::run_cells(const std::string& name, std::span<const Cell> cells,
                                  std::ostream* manifest) {
  const std::size_t shards = runner_.shards();

  // Partition: one cache probe per cell, in order. Hits come back
  // reconstructed; misses are queued for the pool.
  CampaignOutcome out;
  out.results.resize(cells.size());
  std::vector<bool> is_hit(cells.size(), false);
  std::vector<std::size_t> miss_index;  // cell index of the i-th miss
  std::vector<TrialSpec> miss_specs;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (auto cached = cache_.load(cells[i].config, shards, cells[i].label)) {
      out.results[i] = std::move(*cached);
      is_hit[i] = true;
      ++out.hits;
    } else {
      miss_index.push_back(i);
      miss_specs.push_back(TrialSpec{cells[i].config, cells[i].label});
      ++out.misses;
    }
  }

  // Only the misses touch the thread pool.
  core::Runner::AsyncTrials batch = runner_.start_trials(std::move(miss_specs));

  // Stream the manifest in cell order as results land: hits immediately,
  // each miss when its future resolves (and commit it to the cache).
  // Nothing run-dependent (hits, misses, timings) is written, so cold
  // and warm manifests are byte-identical.
  std::optional<JsonWriter> w;
  JsonWriter* wp = nullptr;
  if (manifest != nullptr) {
    wp = &w.emplace(*manifest);
    wp->begin_object();
    wp->field("schema_version", static_cast<std::int64_t>(report::kManifestSchemaVersion));
    wp->field("kind", "eblnet.campaign");
    wp->field("name", name);
    wp->field("fingerprint", cache_.fingerprint());
    wp->field("shards", static_cast<std::uint64_t>(shards));
    wp->field("cell_count", static_cast<std::uint64_t>(cells.size()));
    wp->key("cells");
    wp->begin_array();
  }

  std::size_t next_miss = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!is_hit[i]) {
      TrialResult r = batch.futures[next_miss].get();
      ++next_miss;
      cache_.store(cells[i].config, shards, r);
      out.results[i] = std::move(r);
    }
    if (wp != nullptr) {
      wp->begin_object();
      wp->field("label", cells[i].label);
      wp->field("key", cache_.key_for(cells[i].config, shards).hex());
      wp->key("trial");
      report::write_trial_json(*wp, out.results[i]);
      wp->end_object();
      manifest->flush();  // the streaming contract: each cell lands as written
    }
  }

  if (wp != nullptr) {
    wp->end_array();
    std::uint64_t events = 0;
    sim::MetricsSnapshot merged;
    for (const TrialResult& r : out.results) {
      events += r.events_executed;
      merged.merge(r.metrics);
    }
    wp->key("aggregate");
    wp->begin_object();
    wp->field("events_executed", events);
    wp->key("metrics");
    report::write_metrics_json(*wp, merged);
    wp->end_object();
    wp->end_object();
    *manifest << '\n';
    manifest->flush();
  }
  return out;
}

std::vector<TrialResult> run_cached_trials(RunCache& cache, std::span<const TrialSpec> specs,
                                           unsigned jobs, std::size_t shards) {
  std::vector<Cell> cells;
  cells.reserve(specs.size());
  for (const TrialSpec& s : specs) cells.push_back(Cell{s.name, s.config});
  Runner runner{cache, jobs, shards};
  return std::move(runner.run_cells("", cells, nullptr).results);
}

}  // namespace eblnet::core::campaign
