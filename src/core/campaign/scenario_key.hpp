#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/scenario.hpp"

namespace eblnet::core::campaign {

/// 128-bit content key (two independent 64-bit FNV-1a streams over the
/// same canonical text). 128 bits keeps accidental collisions out of
/// reach for any realistic campaign size; the hex form is the cache
/// filename.
struct Key {
  std::uint64_t hi{0};
  std::uint64_t lo{0};

  /// 32 lowercase hex characters, hi then lo.
  std::string hex() const;

  friend bool operator==(const Key&, const Key&) = default;
};

/// The canonical, fully-resolved textual form of a scenario: one
/// "name = value" line per parameter that can influence the run, in a
/// fixed order. This is what gets hashed, and its resolution rules are
/// what make the cache safe against defaulting and field-order drift:
///
///  - derived defaults are resolved (platoon2_depart's zero-means-auto
///    becomes the concrete instant; ebl.packet_bytes and the TCP payload
///    size become config.packet_bytes, exactly as EblScenario wires them);
///  - parameters gated off by a mode flag are omitted entirely (ARP/RED
///    params without use_arp/use_red_queue, the 802.11 block under TDMA
///    and vice versa, AODV/DSDV params for the other protocol,
///    nakagami_m under two-ray, reactive details when disabled, the
///    fault plan — including its rng_seed — when empty), so touching a
///    dormant knob cannot split the cache;
///  - times are nanosecond integers and doubles are printed with 17
///    significant digits, both exact.
///
/// `shards` is part of the text: a sharded run's events_executed differs
/// from the serial engine's, so shard counts address distinct entries.
std::string canonical_scenario_text(const ScenarioConfig& cfg, std::size_t shards = 1);

/// Hash of canonical_scenario_text — the binary-independent half of a
/// cache key (golden-tested; see tests/data/scenario_key.golden).
Key scenario_key(const ScenarioConfig& cfg, std::size_t shards = 1);

/// Fold a binary fingerprint (campaign::build_id(), or a fixed string in
/// tests) into a scenario key, yielding the on-disk cache key.
Key mix_fingerprint(Key k, std::string_view fingerprint);

}  // namespace eblnet::core::campaign
