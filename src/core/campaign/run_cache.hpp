#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "core/campaign/scenario_key.hpp"
#include "core/trial.hpp"
#include "sim/metrics.hpp"

namespace eblnet::core::campaign {

/// On-disk content-addressed store of finished trial results:
/// `<root>/<4-hex prefix>/<32-hex key>.json`, one immutable entry per
/// (canonical scenario, shard count, binary fingerprint). Determinism
/// makes a result a pure function of that triple, so an entry never
/// needs updating — only creating (atomically) or evicting (when
/// corrupt).
///
/// Each entry holds an index header (key, fingerprint, shards, seed),
/// the schema-v4 trial manifest for humans and tooling, and a `raw`
/// block with the exact samples, counters and series needed to
/// reconstruct the TrialResult bit-identically: summaries recomputed
/// from the restored samples, and manifests re-rendered from the
/// restored result, are byte-for-byte what the original run produced.
///
/// Commit protocol: serialize to `<entry>.tmp.<pid>`, flush, then
/// std::filesystem::rename — readers only ever see absent or complete
/// files on POSIX. A load still re-parses the whole document and checks
/// the trailing `"complete": true` marker, so a torn write (kill-mid-
/// write, full disk) is detected, counted as an eviction, unlinked, and
/// the cell recomputed.
///
/// Hit/miss/eviction/byte counters are kept in a sim::MetricsRegistry
/// ("node" 0 = the cache itself, layer "campaign") so campaign runs
/// surface cache behaviour through the same manifest machinery as every
/// other subsystem.
///
/// Not thread-safe: one RunCache per orchestrating thread (the campaign
/// runner does all cache I/O from the coordinating thread; only the
/// simulations themselves fan out).
class RunCache {
 public:
  /// `root` is created lazily on the first store.
  explicit RunCache(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }

  /// The binary fingerprint folded into every key (defaults to
  /// campaign::build_id()). Tests pin a fixed string so goldens and
  /// fixtures survive rebuilds.
  void set_fingerprint(std::string fp) { fingerprint_ = std::move(fp); }
  const std::string& fingerprint() const noexcept { return fingerprint_; }

  /// The on-disk key for (cfg, shards) under the current fingerprint.
  Key key_for(const ScenarioConfig& cfg, std::size_t shards) const;
  std::filesystem::path entry_path(const Key& key) const;

  /// Look up (cfg, shards). On a hit, returns the reconstructed
  /// TrialResult carrying `name` (the name is caller context, not part
  /// of the key). On a miss — absent, torn, corrupt or foreign entry —
  /// returns nullopt; invalid files are evicted (unlinked) first so the
  /// recomputed result can be stored cleanly.
  std::optional<TrialResult> load(const ScenarioConfig& cfg, std::size_t shards,
                                  std::string name);

  /// Atomically commit a finished trial for (cfg, shards). `r` must be
  /// the result of running exactly `cfg` (the caller's config is
  /// re-serialized on load, so a mismatched result would be served under
  /// the wrong config).
  void store(const ScenarioConfig& cfg, std::size_t shards, const TrialResult& r);

  // --- counters (sim::Counter::kCampaignCache*) ---
  std::uint64_t hits() const noexcept;
  std::uint64_t misses() const noexcept;
  std::uint64_t evictions() const noexcept;
  sim::MetricsSnapshot metrics() const { return metrics_.snapshot(); }

 private:
  std::filesystem::path root_;
  std::string fingerprint_;
  sim::MetricsRegistry metrics_;
};

}  // namespace eblnet::core::campaign
