#include "core/campaign/run_cache.hpp"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/campaign/build_id.hpp"
#include "core/campaign/json_value.hpp"
#include "core/json_writer.hpp"
#include "core/report.hpp"

namespace eblnet::core::campaign {

namespace {

/// Bumped whenever the entry layout changes. The binary fingerprint in
/// the key already invalidates entries across source changes; this is a
/// belt-and-braces marker for hand-migrated cache directories.
constexpr std::int64_t kCacheSchemaVersion = 1;

void write_samples(JsonWriter& w, const std::vector<trace::DelaySample>& samples) {
  w.begin_array();
  for (const auto& s : samples) {
    w.begin_array();
    w.value(static_cast<std::uint64_t>(s.src));
    w.value(static_cast<std::uint64_t>(s.dst));
    w.value(s.seq);
    w.value(s.sent.ns());
    w.value(s.received.ns());
    w.end_array();
  }
  w.end_array();
}

void write_series(JsonWriter& w, const stats::TimeSeries& series) {
  w.begin_array();
  for (const auto& p : series.points()) {
    w.begin_array();
    w.value(p.t.ns());
    w.value(p.value);
    w.end_array();
  }
  w.end_array();
}

void write_ci(JsonWriter& w, const stats::ConfidenceInterval& ci) {
  w.begin_object();
  w.field("mean", ci.mean);
  w.field("half_width", ci.half_width);
  w.field("confidence", ci.confidence);
  w.field("samples", ci.samples);
  w.end_object();
}

std::string serialize_entry(const Key& key, const Key& scenario, std::string_view fingerprint,
                            std::size_t shards, const TrialResult& r) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  // Index header: everything a cache browser needs without reading on.
  w.field("cache_schema", kCacheSchemaVersion);
  w.field("kind", "eblnet.cache_entry");
  w.field("key", key.hex());
  w.field("scenario_key", scenario.hex());
  w.field("fingerprint", fingerprint);
  w.field("shards", static_cast<std::uint64_t>(shards));
  w.field("seed", r.config.seed);

  // The human/tooling view: the ordinary schema-v4 trial manifest.
  w.key("trial");
  report::write_trial_json(w, r);

  // The reload view: exact raw artefacts (integers and 17-digit doubles
  // round-trip losslessly through the writer + parser pair).
  w.key("raw");
  w.begin_object();
  w.field("events_executed", r.events_executed);
  w.field("p1_initial_packet_delay_s", r.p1_initial_packet_delay_s);
  w.field("ifq_drops", r.ifq_drops);
  w.field("phy_collisions", r.phy_collisions);
  w.field("mac_retry_drops", r.mac_retry_drops);
  w.field("routing_control_sends", r.routing_control_sends);
  w.field("data_frame_sends", r.data_frame_sends);

  w.key("delay");
  w.begin_object();
  w.key("p1_middle");
  write_samples(w, r.p1_middle);
  w.key("p1_trailing");
  write_samples(w, r.p1_trailing);
  w.key("p2_middle");
  write_samples(w, r.p2_middle);
  w.key("p2_trailing");
  write_samples(w, r.p2_trailing);
  w.end_object();

  w.key("throughput");
  w.begin_object();
  w.key("p1");
  write_series(w, r.p1_throughput);
  w.key("p2");
  write_series(w, r.p2_throughput);
  w.key("p1_ci");
  write_ci(w, r.p1_throughput_ci);
  w.key("p2_ci");
  write_ci(w, r.p2_throughput_ci);
  w.end_object();

  const TrialResult::Resilience& rz = r.resilience;
  w.key("resilience");
  w.begin_object();
  w.field("faults_enabled", rz.faults_enabled);
  w.field("time_to_reroute_s", rz.time_to_reroute_s);
  w.field("delivery_ratio", rz.delivery_ratio);
  w.field("delivery_ratio_during_outage", rz.delivery_ratio_during_outage);
  w.field("delivery_ratio_after_outage", rz.delivery_ratio_after_outage);
  w.field("outage_start_s", rz.outage_start_s);
  w.field("outage_end_s", rz.outage_end_s);
  w.field("crashes", rz.crashes);
  w.field("injected_drops", rz.injected_drops);
  w.field("jam_bursts", rz.jam_bursts);
  w.end_object();

  const sim::MetricsSnapshot& m = r.metrics;
  w.key("metrics");
  w.begin_object();
  w.field("enabled", m.enabled);
  w.field("nodes", static_cast<std::uint64_t>(m.nodes));
  w.key("counters");
  w.begin_array();
  for (const std::uint64_t v : m.counters) w.value(v);
  w.end_array();
  w.key("gauges");
  w.begin_array();
  for (const sim::GaugeStat& g : m.gauges) {
    w.begin_array();
    w.value(g.count);
    w.value(g.sum);
    w.value(g.min);
    w.value(g.max);
    w.end_array();
  }
  w.end_array();
  w.end_object();

  w.end_object();  // raw

  // Last field by design: a truncated write cannot carry it.
  w.field("complete", true);
  w.end_object();
  os << '\n';
  return std::move(os).str();
}

bool read_samples(const JsonValue* v, std::vector<trace::DelaySample>& out) {
  if (v == nullptr || !v->is_array()) return false;
  out.clear();
  out.reserve(v->as_array().size());
  for (const JsonValue& row : v->as_array()) {
    if (!row.is_array() || row.as_array().size() != 5) return false;
    const auto& f = row.as_array();
    trace::DelaySample s;
    s.src = static_cast<net::NodeId>(f[0].as_u64());
    s.dst = static_cast<net::NodeId>(f[1].as_u64());
    s.seq = f[2].as_u64();
    s.sent = sim::Time::nanoseconds(f[3].as_i64());
    s.received = sim::Time::nanoseconds(f[4].as_i64());
    out.push_back(s);
  }
  return true;
}

bool read_series(const JsonValue* v, stats::TimeSeries& out) {
  if (v == nullptr || !v->is_array()) return false;
  out = stats::TimeSeries{};
  for (const JsonValue& row : v->as_array()) {
    if (!row.is_array() || row.as_array().size() != 2) return false;
    const auto& f = row.as_array();
    out.add(sim::Time::nanoseconds(f[0].as_i64()), f[1].as_double());
  }
  return true;
}

bool read_ci(const JsonValue* v, stats::ConfidenceInterval& ci) {
  if (v == nullptr || !v->is_object()) return false;
  const JsonValue* mean = v->find("mean");
  const JsonValue* hw = v->find("half_width");
  const JsonValue* conf = v->find("confidence");
  const JsonValue* n = v->find("samples");
  if (mean == nullptr || hw == nullptr || conf == nullptr || n == nullptr) return false;
  ci.mean = mean->as_double();
  ci.half_width = hw->as_double();
  ci.confidence = conf->as_double();
  ci.samples = n->as_u64();
  return true;
}

/// Reconstruct the TrialResult from a parsed, validated entry. Returns
/// false on any structural mismatch (treated as corruption upstream).
bool reconstruct(const JsonValue& entry, const ScenarioConfig& cfg, std::string name,
                 TrialResult& out) {
  const JsonValue* raw = entry.find("raw");
  if (raw == nullptr || !raw->is_object()) return false;

  out = TrialResult{};
  out.name = std::move(name);
  out.config = cfg;

  const auto u64_field = [&](const char* key, std::uint64_t& dst) {
    const JsonValue* v = raw->find(key);
    if (v == nullptr || !v->is_number()) return false;
    dst = v->as_u64();
    return true;
  };
  if (!u64_field("events_executed", out.events_executed)) return false;
  if (!u64_field("ifq_drops", out.ifq_drops)) return false;
  if (!u64_field("phy_collisions", out.phy_collisions)) return false;
  if (!u64_field("mac_retry_drops", out.mac_retry_drops)) return false;
  if (!u64_field("routing_control_sends", out.routing_control_sends)) return false;
  if (!u64_field("data_frame_sends", out.data_frame_sends)) return false;
  const JsonValue* initial = raw->find("p1_initial_packet_delay_s");
  if (initial == nullptr) return false;
  out.p1_initial_packet_delay_s = initial->as_double();

  const JsonValue* delay = raw->find("delay");
  if (delay == nullptr) return false;
  if (!read_samples(delay->find("p1_middle"), out.p1_middle)) return false;
  if (!read_samples(delay->find("p1_trailing"), out.p1_trailing)) return false;
  if (!read_samples(delay->find("p2_middle"), out.p2_middle)) return false;
  if (!read_samples(delay->find("p2_trailing"), out.p2_trailing)) return false;

  const JsonValue* tput = raw->find("throughput");
  if (tput == nullptr) return false;
  if (!read_series(tput->find("p1"), out.p1_throughput)) return false;
  if (!read_series(tput->find("p2"), out.p2_throughput)) return false;
  if (!read_ci(tput->find("p1_ci"), out.p1_throughput_ci)) return false;
  if (!read_ci(tput->find("p2_ci"), out.p2_throughput_ci)) return false;

  const JsonValue* rz = raw->find("resilience");
  if (rz == nullptr || !rz->is_object()) return false;
  const auto dbl = [&](const char* key, double& dst) {
    const JsonValue* v = rz->find(key);
    if (v == nullptr) return false;
    dst = v->as_double();
    return true;
  };
  const JsonValue* fe = rz->find("faults_enabled");
  if (fe == nullptr || !fe->is_bool()) return false;
  out.resilience.faults_enabled = fe->as_bool();
  if (!dbl("time_to_reroute_s", out.resilience.time_to_reroute_s)) return false;
  if (!dbl("delivery_ratio", out.resilience.delivery_ratio)) return false;
  if (!dbl("delivery_ratio_during_outage", out.resilience.delivery_ratio_during_outage))
    return false;
  if (!dbl("delivery_ratio_after_outage", out.resilience.delivery_ratio_after_outage))
    return false;
  if (!dbl("outage_start_s", out.resilience.outage_start_s)) return false;
  if (!dbl("outage_end_s", out.resilience.outage_end_s)) return false;
  const JsonValue* crashes = rz->find("crashes");
  const JsonValue* drops = rz->find("injected_drops");
  const JsonValue* jams = rz->find("jam_bursts");
  if (crashes == nullptr || drops == nullptr || jams == nullptr) return false;
  out.resilience.crashes = crashes->as_u64();
  out.resilience.injected_drops = drops->as_u64();
  out.resilience.jam_bursts = jams->as_u64();

  const JsonValue* m = raw->find("metrics");
  if (m == nullptr || !m->is_object()) return false;
  const JsonValue* enabled = m->find("enabled");
  const JsonValue* nodes = m->find("nodes");
  const JsonValue* counters = m->find("counters");
  const JsonValue* gauges = m->find("gauges");
  if (enabled == nullptr || !enabled->is_bool() || nodes == nullptr || counters == nullptr ||
      !counters->is_array() || gauges == nullptr || !gauges->is_array())
    return false;
  sim::MetricsSnapshot& ms = out.metrics;
  ms.enabled = enabled->as_bool();
  ms.nodes = static_cast<std::uint32_t>(nodes->as_u64());
  // A counter-table shape mismatch means the entry predates a schema
  // change that slipped past the fingerprint (hand-copied directory);
  // reject it rather than serve shifted counters.
  if (counters->as_array().size() != ms.nodes * sim::kCounterCount) return false;
  if (gauges->as_array().size() != ms.nodes * sim::kGaugeCount) return false;
  ms.counters.reserve(counters->as_array().size());
  for (const JsonValue& v : counters->as_array()) {
    if (!v.is_number()) return false;
    ms.counters.push_back(v.as_u64());
  }
  ms.gauges.reserve(gauges->as_array().size());
  for (const JsonValue& g : gauges->as_array()) {
    if (!g.is_array() || g.as_array().size() != 4) return false;
    const auto& f = g.as_array();
    sim::GaugeStat stat;
    stat.count = f[0].as_u64();
    stat.sum = f[1].as_double();
    stat.min = f[2].as_double();
    stat.max = f[3].as_double();
    ms.gauges.push_back(stat);
  }
  return true;
}

}  // namespace

RunCache::RunCache(std::filesystem::path root)
    : root_{std::move(root)}, fingerprint_{build_id()} {
  metrics_.set_enabled(true);
}

Key RunCache::key_for(const ScenarioConfig& cfg, std::size_t shards) const {
  return mix_fingerprint(scenario_key(cfg, shards), fingerprint_);
}

std::filesystem::path RunCache::entry_path(const Key& key) const {
  const std::string hex = key.hex();
  return root_ / hex.substr(0, 4) / (hex + ".json");
}

std::optional<TrialResult> RunCache::load(const ScenarioConfig& cfg, std::size_t shards,
                                          std::string name) {
  const Key key = key_for(cfg, shards);
  const std::filesystem::path path = entry_path(key);

  std::string text;
  {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
      metrics_.add(0, sim::Counter::kCampaignCacheMisses);
      return std::nullopt;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = std::move(ss).str();
  }

  const auto evict = [&] {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best effort; a locked file just stays
    metrics_.add(0, sim::Counter::kCampaignCacheEvictions);
    metrics_.add(0, sim::Counter::kCampaignCacheMisses);
  };

  const std::optional<JsonValue> doc = parse_json(text);
  if (!doc || !doc->is_object()) {
    evict();
    return std::nullopt;
  }
  const JsonValue* complete = doc->find("complete");
  const JsonValue* kind = doc->find("kind");
  const JsonValue* schema = doc->find("cache_schema");
  const JsonValue* stored_key = doc->find("key");
  const JsonValue* fp = doc->find("fingerprint");
  if (complete == nullptr || !complete->is_bool() || !complete->as_bool() ||  //
      kind == nullptr || !kind->is_string() || kind->as_string() != "eblnet.cache_entry" ||
      schema == nullptr || schema->as_i64() != kCacheSchemaVersion ||  //
      stored_key == nullptr || !stored_key->is_string() || stored_key->as_string() != key.hex() ||
      fp == nullptr || !fp->is_string() || fp->as_string() != fingerprint_) {
    evict();
    return std::nullopt;
  }

  TrialResult r;
  if (!reconstruct(*doc, cfg, std::move(name), r)) {
    evict();
    return std::nullopt;
  }
  metrics_.add(0, sim::Counter::kCampaignCacheHits);
  metrics_.add(0, sim::Counter::kCampaignCacheBytesRead, text.size());
  return r;
}

void RunCache::store(const ScenarioConfig& cfg, std::size_t shards, const TrialResult& r) {
  const Key scenario = scenario_key(cfg, shards);
  const Key key = mix_fingerprint(scenario, fingerprint_);
  const std::filesystem::path path = entry_path(key);
  std::filesystem::create_directories(path.parent_path());

  const std::string text = serialize_entry(key, scenario, fingerprint_, shards, r);

  // Write-to-temp + rename: a reader never observes a half-written
  // entry under the final name.
  const std::filesystem::path tmp =
      path.parent_path() / (path.filename().string() + ".tmp." + std::to_string(::getpid()));
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw std::runtime_error{"RunCache: cannot open " + tmp.string() + " for writing"};
    out << text;
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error{"RunCache: write failed for " + tmp.string()};
    }
  }
  std::filesystem::rename(tmp, path);
  metrics_.add(0, sim::Counter::kCampaignCacheBytesWritten, text.size());
}

std::uint64_t RunCache::hits() const noexcept {
  return metrics_.node_counter(0, sim::Counter::kCampaignCacheHits);
}
std::uint64_t RunCache::misses() const noexcept {
  return metrics_.node_counter(0, sim::Counter::kCampaignCacheMisses);
}
std::uint64_t RunCache::evictions() const noexcept {
  return metrics_.node_counter(0, sim::Counter::kCampaignCacheEvictions);
}

}  // namespace eblnet::core::campaign
