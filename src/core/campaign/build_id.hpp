#pragma once

namespace eblnet::core::campaign {

/// 16-hex-character fingerprint of the src/ tree this binary was built
/// from (SHA256 over every .cpp/.hpp, truncated), embedded at build time
/// by cmake/build_id.cmake. The run cache folds it into every entry key:
/// a result is a pure function of (config, seed, binary), so two builds
/// of identical sources share cache entries and any source change
/// invalidates them wholesale — no manual cache flushing on rebuild.
const char* build_id() noexcept;

}  // namespace eblnet::core::campaign
