#include "core/ebl_app.hpp"

#include <stdexcept>

namespace eblnet::core {
namespace {

transport::TcpParams link_tcp_params(const EblConfig& cfg) {
  transport::TcpParams p = cfg.tcp;
  p.packet_size = cfg.packet_bytes;
  return p;
}

}  // namespace

EblLink::EblLink(net::Env& env, net::Node& lead, net::Node& follower, net::Port lead_port,
                 net::Port follower_port, const EblConfig& cfg)
    : follower_{follower},
      sender_{lead, lead_port, link_tcp_params(cfg)},
      sink_{follower, follower_port, cfg.sink},
      feeder_{env, sender_, cfg.packet_bytes,
              app::CbrSource::interval_for_rate(cfg.packet_bytes, cfg.cbr_rate_bps)} {
  sender_.connect(follower.id(), follower_port);
}

PlatoonEbl::PlatoonEbl(net::Env& env, mobility::Platoon& platoon,
                       const std::vector<net::Node*>& nodes, EblConfig cfg, net::Port base_port) {
  if (nodes.size() != platoon.size())
    throw std::invalid_argument{"PlatoonEbl: one node per platoon vehicle required"};
  if (nodes.size() < 2) throw std::invalid_argument{"PlatoonEbl: need at least one follower"};

  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const auto idx = static_cast<net::Port>(i);
    links_.push_back(std::make_unique<EblLink>(env, *nodes[0], *nodes[i],
                                               static_cast<net::Port>(base_port + idx),
                                               static_cast<net::Port>(base_port + 100),
                                               cfg));
  }

  auto& lead_vehicle = *platoon.lead();
  lead_vehicle.subscribe([this](mobility::DriveState s) { on_lead_state(s); });
  // Apply the current state once the simulation starts (the platoon may
  // already be stopped at an intersection, like the paper's platoon 2).
  env.scheduler().schedule_in(sim::Time::zero(), [this, &lead_vehicle] {
    on_lead_state(lead_vehicle.state());
  });
}

bool PlatoonEbl::communicating() const {
  return !links_.empty() && links_.front()->running();
}

std::uint64_t PlatoonEbl::total_sink_bytes() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->sink().bytes();
  return total;
}

void PlatoonEbl::on_lead_state(mobility::DriveState s) {
  const bool communicate = s != mobility::DriveState::kCruising;
  for (const auto& l : links_) {
    if (communicate) {
      l->start();
    } else {
      l->stop();
    }
  }
}

}  // namespace eblnet::core
