#include "core/traffic_scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "queue/drop_tail.hpp"
#include "routing/static_routing.hpp"

namespace eblnet::core {

namespace {

constexpr net::Port kWarningPort = 7000;

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform [0, 1) from a hash — the penetration roll.
double hash_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

TrafficScenario::TrafficScenario(TrafficConfig config)
    : config_{std::move(config)}, env_{config_.seed} {
  if (!(config_.penetration >= 0.0 && config_.penetration <= 1.0))
    throw std::invalid_argument{"TrafficScenario: penetration must be in [0, 1]"};
  if (config_.warn_range_m < 0.0)
    throw std::invalid_argument{"TrafficScenario: warn range must be >= 0"};
  if (config_.node_rng_streams) env_.enable_node_rng_streams();

  propagation_ = std::make_shared<phy::TwoRayGround>();
  channel_ = std::make_unique<phy::Channel>(env_, propagation_, config_.channel);

  mobility::TrafficFlowParams fp = config_.flow;
  if (fp.end > config_.duration) fp.end = config_.duration;
  // The spawn stream gets its own domain tag; the equip roll gets
  // another, so membership never perturbs arrivals (and vice versa).
  flow_ = std::make_unique<mobility::TrafficFlow>(std::move(fp),
                                                  mix_seed(config_.seed, 0x5F10'77D0'0001ULL));
  equip_seed_ = mix_seed(config_.seed, 0xE901'BAD6'0002ULL);

  // Declare the dynamics side's speed bound before anything moves: the
  // grid bakes cull radii from it, so this must precede the first
  // transmit (see DynamicsModel's contract).
  channel_->raise_speed_bound(flow_->max_speed_bound_mps());

  flow_->set_on_spawn([this](VehicleId v) { on_spawn(v); });
  flow_->set_on_despawn([this](VehicleId v) { on_despawn(v); });
  flow_->set_on_hard_brake([this](VehicleId v) { on_hard_brake(v); });

  if (!config_.incident_at.is_zero()) {
    env_.scheduler().schedule_at(config_.incident_at, [this] { trigger_incident(); });
  }
  flow_->start(env_.scheduler());
}

TrafficScenario::~TrafficScenario() = default;

bool TrafficScenario::equip_roll(VehicleId v) const {
  if (config_.penetration <= 0.0) return false;
  if (config_.penetration >= 1.0) return true;
  return hash_unit(mix_seed(equip_seed_, v)) < config_.penetration;
}

void TrafficScenario::on_spawn(VehicleId v) {
  if (equipped_.size() <= v) equipped_.resize(v + 1);
  if (!equip_roll(v)) return;

  auto eq = std::make_unique<Equipped>();
  const auto id = static_cast<net::NodeId>(v);
  eq->node = std::make_unique<net::Node>(env_, id);
  eq->node->set_mobility(flow_->make_mobility(v));

  eq->phy = std::make_unique<phy::WirelessPhy>(
      env_, id, *channel_, [this, v] { return flow_->position_of(v, env_.now()); }, config_.phy);

  auto ifq = std::make_unique<queue::PriQueue>(config_.ifq_capacity);
  eq->node->set_mac(
      std::make_unique<mac::Mac80211>(env_, id, *eq->phy, std::move(ifq), config_.mac80211));
  // Single-hop broadcast forwarding is all the flood needs; static
  // routing passes kBroadcastAddress straight down.
  eq->node->set_routing(
      std::make_unique<routing::StaticRouting>(env_, id, /*direct_by_default=*/true));

  eq->flood = std::make_unique<WarningFlood>(env_, *eq->node, kWarningPort, config_.flood);
  eq->flood->set_on_warning(
      [this, v](std::uint64_t warning_id, unsigned) { on_warning(v, warning_id); });

  // The reactor debounces: however many warnings arrive, the policy is
  // installed once per episode, `reaction` after the first one.
  eq->reactor = std::make_unique<EblBrakeReactor>(
      env_,
      [this, v] {
        ++reactions_;
        flow_->apply_policy(v, config_.warned_policy, env_.now() + config_.policy_hold);
      },
      config_.reaction);

  equipped_[v] = std::move(eq);
  ++equipped_count_;
}

void TrafficScenario::on_despawn(VehicleId v) {
  if (v >= equipped_.size() || !equipped_[v]) return;
  // Power the radio off (detaches from the channel and the grid) and
  // crash the node; objects stay alive so in-flight closures are safe.
  equipped_[v]->phy->set_down(true);
  equipped_[v]->node->set_up(false);
}

void TrafficScenario::on_hard_brake(VehicleId v) {
  if (v >= equipped_.size() || !equipped_[v] || !equipped_[v]->node->up()) return;
  // Origin vehicle id travels in the top word so receivers can check
  // the warning actually concerns traffic ahead of them.
  const std::uint64_t warning_id = (static_cast<std::uint64_t>(v) << 32) | warning_counter_++;
  equipped_[v]->flood->originate(warning_id);
  ++warnings_originated_;
}

void TrafficScenario::on_warning(VehicleId receiver, std::uint64_t warning_id) {
  ++warning_receptions_;
  const auto origin = static_cast<VehicleId>(warning_id >> 32);
  if (origin >= flow_->spawned_total() || !flow_->active(origin)) return;
  if (!flow_->active(receiver)) return;
  if (flow_->road_of(origin) != flow_->road_of(receiver)) return;
  const double ahead = flow_->longitudinal_pos(origin) - flow_->longitudinal_pos(receiver);
  if (ahead <= 0.0 || ahead > config_.warn_range_m) return;
  equipped_[receiver]->reactor->notify();
}

void TrafficScenario::trigger_incident() {
  const mobility::RoadSpec& road = flow_->params().roads.at(0);
  const double target = config_.incident_pos_m < 0.0 ? road.length_m / 2.0 : config_.incident_pos_m;
  VehicleId best = mobility::TrafficFlow::kNoVehicle;
  double best_dist = 1e300;
  for (VehicleId v = 0; v < flow_->spawned_total(); ++v) {
    if (!flow_->active(v) || flow_->road_of(v) != 0 || flow_->lane_of(v) != 0) continue;
    const double d = std::abs(flow_->longitudinal_pos(v) - target);
    if (d < best_dist) {
      best_dist = d;
      best = v;
    }
  }
  if (best == mobility::TrafficFlow::kNoVehicle) return;  // road empty: no incident
  incident_vehicle_ = best;
  incident_pos_ = flow_->longitudinal_pos(best);
  incident_time_ = env_.now();
  flow_->arm_slow_stats();
  flow_->force_stop(best, config_.incident_decel_mps2, env_.now() + config_.incident_hold);
}

void TrafficScenario::run() { run_until(config_.duration); }

void TrafficScenario::run_until(sim::Time t) { env_.scheduler().run_until(t); }

TrafficRunResult TrafficScenario::result(std::string name) {
  TrafficRunResult r;
  r.name = std::move(name);
  r.penetration = config_.penetration;
  r.vehicles_spawned = flow_->spawned_total();
  r.equipped = equipped_count_;
  r.warnings_originated = warnings_originated_;
  r.warning_receptions = warning_receptions_;
  r.reactions = reactions_;
  r.events_executed = env_.scheduler().executed_count();

  // Shockwave front: least-squares fit of first-slow position vs. time
  // for vehicles upstream of the incident on the incident road.
  double sum_t = 0.0, sum_p = 0.0, sum_tt = 0.0, sum_tp = 0.0;
  std::uint64_t n = 0;
  for (const auto& e : flow_->slow_events()) {
    if (e.road != 0) continue;
    if (incident_pos_ >= 0.0 && e.pos_m > incident_pos_) continue;
    if (e.vehicle == incident_vehicle_) continue;
    sum_t += e.t_s;
    sum_p += e.pos_m;
    sum_tt += e.t_s * e.t_s;
    sum_tp += e.t_s * e.pos_m;
    ++n;
  }
  r.shockwave_points = n;
  const double det = static_cast<double>(n) * sum_tt - sum_t * sum_t;
  if (n >= 2 && det != 0.0) r.shockwave_speed_mps = (n * sum_tp - sum_t * sum_p) / det;
  r.slowed_vehicles = flow_->slow_events().size();

  const double incident_s = incident_time_.to_seconds();
  for (const auto& s : flow_->speed_series()) {
    if (incident_vehicle_ != mobility::TrafficFlow::kNoVehicle && s.t_s >= incident_s &&
        s.active > 0 && s.mean_speed_mps < config_.congestion_speed_mps &&
        r.congestion_onset_s < 0.0) {
      r.congestion_onset_s = s.t_s;
    }
    if (s.active > 0) r.final_mean_speed_mps = s.mean_speed_mps;
  }
  return r;
}

}  // namespace eblnet::core
