#pragma once

#include <memory>
#include <vector>

#include "core/ebl_app.hpp"
#include "core/reactor.hpp"
#include "mac/arp.hpp"
#include "mac/edca.hpp"
#include "mac/mac_80211.hpp"
#include "mac/mac_tdma.hpp"
#include "mobility/platoon.hpp"
#include "net/env.hpp"
#include "net/node.hpp"
#include "phy/wireless_phy.hpp"
#include "queue/red.hpp"
#include "routing/aodv.hpp"
#include "routing/dsdv.hpp"
#include "sim/fault.hpp"
#include "trace/throughput_monitor.hpp"
#include "trace/trace_manager.hpp"

namespace eblnet::app {
class Beacon;
}

namespace eblnet::core {

enum class MacType : std::uint8_t { kTdma, k80211, kEdca };

/// Network-layer choice: AODV is the paper's fixed parameter; DSDV and
/// pre-installed static routes are comparison baselines.
enum class RoutingType : std::uint8_t { kAodv, kDsdv, kStatic };

/// Channel model: two-ray ground is the paper's (and NS-2's) default;
/// Nakagami-m fast fading on top of two-ray is the de facto VANET
/// channel in later literature, offered for sensitivity/scaling studies.
enum class PropagationType : std::uint8_t { kTwoRay, kNakagami };

const char* to_string(MacType m) noexcept;
const char* to_string(RoutingType r) noexcept;
const char* to_string(PropagationType p) noexcept;

/// Closed-loop follower behaviour for the intersection scenario. When
/// enabled, platoon 1's followers abandon the scripted all-stop: only
/// the lead brakes on schedule, and each follower brakes solely because
/// its first EBL message arrived — `reaction` later, at `decel_mps2`
/// (an EblBrakeReactor per follower). A CollisionMonitor watches the
/// platoon 1 column, so whether the headway/network combination avoids
/// the rear-end collision becomes an *observed* outcome instead of the
/// paper's closed-form §III.E verdict.
struct ReactiveBrakingConfig {
  bool enabled{false};
  double decel_mps2{6.0};
  sim::Time reaction{sim::Time::milliseconds(100)};
  double min_gap_m{0.5};  ///< CollisionMonitor near-collision threshold
};

/// Periodic CAM/BSM broadcast beaconing on every node (app::Beacon).
/// Disabled by default: a scenario without beacons is bit-identical to a
/// build that predates the subsystem.
struct BeaconConfig {
  bool enabled{false};
  sim::Time interval{sim::Time::milliseconds(100)};  ///< 10 Hz
  std::size_t payload_bytes{200};
  std::uint8_t priority{5};  ///< 802.1D: 5 -> AC_VI under EDCA
  net::Port port{5005};
};

/// Corner-building NLOS attenuation at the intersection
/// (phy::IntersectionBlockage wrapped around the configured propagation
/// model, centred on the origin — where the platoons meet).
struct BlockageConfig {
  bool enabled{false};
  double half_width_m{10.0};   ///< half-width of each road corridor
  double corner_loss_db{10.0}; ///< extra loss on around-the-corner paths
};

/// Full configuration of the paper's two-platoon intersection scenario.
/// Defaults reproduce trial 1 (1000-byte packets over TDMA).
struct ScenarioConfig {
  // --- the paper's variable parameters ---
  std::size_t packet_bytes{1000};
  MacType mac{MacType::kTdma};

  // --- baselines (the paper fixes AODV) ---
  RoutingType routing{RoutingType::kAodv};

  /// Insert the NS-2-style ARP link layer below routing. Off by default
  /// (the calibrated trials exclude it); bench/ablation_arp measures its
  /// contribution to the initial-packet delay.
  bool use_arp{false};
  mac::ArpParams arp{};

  // --- the paper's fixed parameters ---
  std::size_t platoon_size{3};
  double speed_mps{22.352};  ///< 50 mph
  double vehicle_gap_m{5.0};
  double decel_mps2{5.0};
  std::size_t ifq_capacity{50};  ///< drop-tail PriQueue length

  /// Replace the paper's drop-tail PriQueue with RED (ablation only).
  bool use_red_queue{false};
  queue::RedParams red{};

  // --- scenario geometry / timing ---
  /// Platoon 1 approaches from the south and begins braking at this time
  /// (the paper's throughput plots ramp at ~2 s).
  sim::Time platoon1_brake_at{sim::Time::seconds(std::int64_t{2})};
  /// Platoon 2 departs (and stops communicating) at this time. Zero means
  /// "when platoon 1 has fully stopped", the paper's narrative.
  sim::Time platoon2_depart{};
  sim::Time duration{sim::Time::seconds(std::int64_t{62})};

  /// Instant platoon 1 is fully stopped at the intersection.
  sim::Time platoon1_stop_time() const {
    return platoon1_brake_at + sim::Time::seconds(speed_mps / decel_mps2);
  }
  /// platoon2_depart with the "auto" default resolved.
  sim::Time resolved_platoon2_depart() const {
    return platoon2_depart.is_zero() ? platoon1_stop_time() : platoon2_depart;
  }

  // --- traffic ---
  EblConfig ebl{};

  /// Closed-loop follower braking (off: the scripted all-stop).
  ReactiveBrakingConfig reactive{};

  /// CAM/BSM beaconing on every node (off: no beacon traffic exists).
  BeaconConfig beacon{};

  // --- stack parameters ---
  mac::Mac80211Params mac80211{};
  mac::EdcaParams edca{};
  mac::TdmaParams tdma{};
  phy::PhyParams phy{};
  /// Radio channel model. The paper's trials use two-ray ground;
  /// kNakagami layers gamma-distributed fast fading (shape nakagami_m,
  /// drawn from the scenario's seeded Rng) on top of it.
  PropagationType propagation{PropagationType::kTwoRay};
  double nakagami_m{3.0};
  /// Keyed per-pair Nakagami fade streams: each (tx, rx, transmit-time)
  /// evaluation reseeds a scratch Rng from a pure hash of the scenario
  /// seed, so fades are independent of evaluation order — the property
  /// that lets the sharded engine run Nakagami scenarios bit-identically
  /// to the serial oracle. Off by default: the shared-stream draws are
  /// the historical behaviour and stay bit-identical.
  bool nakagami_node_streams{false};
  /// Corner-building NLOS wrapping (off: pure line-of-sight model).
  BlockageConfig blockage{};
  /// Broadcast-delivery tuning: spatial-grid threshold and re-bucketing
  /// bounds (the defaults keep the paper's 6-vehicle trials on the flat
  /// loop and switch large populations to the grid).
  phy::ChannelParams channel{};
  routing::AodvParams aodv{};
  routing::DsdvParams dsdv{};
  sim::Time throughput_sample_interval{sim::Time::milliseconds(100)};

  std::uint64_t seed{1};
  bool enable_trace{true};

  /// Give every node its own counter-based RNG stream (seeded from
  /// mix_seed(seed, node id)) instead of the shared Env stream. Draw
  /// results then depend only on (seed, node, draw index), never on the
  /// interleaving of draws across nodes — the property the sharded engine
  /// needs for serial/parallel equivalence. Off by default: the shared
  /// stream is the historical behaviour and stays bit-identical.
  bool node_rng_streams{false};

  /// Deterministic fault schedule (sim::FaultPlan). Empty by default —
  /// and an empty plan is guaranteed not to perturb the simulation in any
  /// way (bit-identical traces), so the paper's failure-free trials are
  /// unaffected by the subsystem's existence.
  sim::FaultPlan faults{};

  /// Turn on the per-layer metrics registry (sim::MetricsRegistry). Off by
  /// default so the hot path stays a single predicted branch; benches enable
  /// it when a JSON run manifest is requested.
  bool enable_metrics{false};
};

/// The reference network model of the paper (§III.A): two platoons of
/// three vehicles at an intersection. Platoon 1 (nodes 0–2) approaches
/// from the south, brakes, stops, and communicates; platoon 2 (nodes 3–5)
/// starts stopped-and-communicating on the cross street and departs
/// east at `platoon2_depart`.
class EblScenario {
 public:
  explicit EblScenario(ScenarioConfig config);
  ~EblScenario();

  EblScenario(const EblScenario&) = delete;
  EblScenario& operator=(const EblScenario&) = delete;

  /// Run the whole simulation (to config.duration).
  void run();

  /// Advance to an absolute simulation time (idempotent; run() finishes).
  void run_until(sim::Time t);

  // --- access for analysis ---
  const ScenarioConfig& config() const noexcept { return config_; }
  net::Env& env() noexcept { return env_; }
  phy::Channel& channel() noexcept { return *channel_; }
  const trace::TraceManager& trace() const noexcept { return trace_; }

  net::Node& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  mobility::Platoon& platoon1() noexcept { return *platoon1_; }
  mobility::Platoon& platoon2() noexcept { return *platoon2_; }
  PlatoonEbl& ebl1() noexcept { return *ebl1_; }
  PlatoonEbl& ebl2() noexcept { return *ebl2_; }
  const trace::ThroughputMonitor& throughput1() const noexcept { return *tput1_; }
  const trace::ThroughputMonitor& throughput2() const noexcept { return *tput2_; }
  phy::WirelessPhy& phy(std::size_t i) { return *phys_.at(i); }

  /// The node's AODV agent; throws unless config.routing == kAodv.
  routing::Aodv& aodv(std::size_t i);

  /// Platoon 1 follower `i`'s reactor (0 = the vehicle directly behind
  /// the lead); throws unless config.reactive.enabled.
  EblBrakeReactor& reactor(std::size_t i);
  /// The platoon 1 near-collision watcher; throws unless reactive mode.
  CollisionMonitor& collisions();

  /// Node `i`'s CAM/BSM beacon app; throws unless config.beacon.enabled.
  app::Beacon& beacon(std::size_t i);

  /// Node ids, platoon-relative.
  static constexpr net::NodeId kP1Lead = 0, kP1Middle = 1, kP1Trailing = 2;
  static constexpr net::NodeId kP2Lead = 3, kP2Middle = 4, kP2Trailing = 5;

 private:
  void build_nodes();
  void build_mobility();
  void build_traffic();

  ScenarioConfig config_;
  trace::TraceManager trace_;
  net::Env env_;
  std::shared_ptr<phy::PropagationModel> propagation_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<std::unique_ptr<phy::WirelessPhy>> phys_;
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<routing::Aodv*> aodvs_;  ///< non-owning views into nodes' agents
  std::unique_ptr<mobility::Platoon> platoon1_;
  std::unique_ptr<mobility::Platoon> platoon2_;
  std::unique_ptr<PlatoonEbl> ebl1_;
  std::unique_ptr<PlatoonEbl> ebl2_;
  std::unique_ptr<trace::ThroughputMonitor> tput1_;
  std::unique_ptr<trace::ThroughputMonitor> tput2_;
  std::vector<std::unique_ptr<EblBrakeReactor>> reactors_;  ///< reactive mode only
  std::unique_ptr<CollisionMonitor> collision_monitor_;     ///< reactive mode only
  std::vector<std::unique_ptr<app::Beacon>> beacons_;       ///< beacon mode only
};

}  // namespace eblnet::core
