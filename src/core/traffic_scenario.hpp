#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flood.hpp"
#include "core/reactor.hpp"
#include "mac/mac_80211.hpp"
#include "mobility/traffic_flow.hpp"
#include "net/env.hpp"
#include "net/node.hpp"
#include "phy/wireless_phy.hpp"

namespace eblnet::core {

/// Configuration of a closed-loop car-following run: an IDM traffic
/// stream (mobility::TrafficFlow) in which a `penetration` fraction of
/// vehicles carries a V2V radio. Equipped vehicles flood a warning when
/// they brake hard; equipped receivers upstream of the origin install a
/// cautious driving policy (wider headway, capped speed) `reaction`
/// after the warning arrives — changing congestion onset, which is the
/// effect the scripted intersection scenario cannot express.
struct TrafficConfig {
  bool enabled{false};

  /// Road network, IDM calibration, arrival rates, tick, vehicle cap.
  mobility::TrafficFlowParams flow{};

  /// Fraction of vehicles carrying a radio; membership is a
  /// deterministic per-vehicle hash of (seed, spawn index), so sweeping
  /// penetration compares identical traffic.
  double penetration{1.0};
  /// Warnings are acted on only if the origin is on the same road, ahead
  /// of the receiver, and within this distance.
  double warn_range_m{1000.0};
  /// Perception/actuation latency between reception and the policy.
  sim::Time reaction{sim::Time::milliseconds(250)};
  /// Policy installed on warned vehicles, and how long it holds.
  mobility::DrivingPolicy warned_policy{2.0, 8.0};
  sim::Time policy_hold{sim::Time::seconds(std::int64_t{30})};

  /// Staged incident seeding the shockwave: at `incident_at` (zero =
  /// none) the vehicle on road 0, lane 0 closest to `incident_pos_m`
  /// (< 0 = mid-road) is forced to brake at `incident_decel_mps2` and
  /// hold still for `incident_hold`.
  sim::Time incident_at{};
  double incident_decel_mps2{6.0};
  sim::Time incident_hold{sim::Time::seconds(std::int64_t{60})};
  double incident_pos_m{-1.0};

  /// Mean speed below this counts as congested (onset metric).
  double congestion_speed_mps{10.0};

  FloodParams flood{};
  phy::PhyParams phy{};
  mac::Mac80211Params mac80211{};
  phy::ChannelParams channel{};
  std::size_t ifq_capacity{50};

  sim::Time duration{sim::Time::seconds(std::int64_t{120})};
  std::uint64_t seed{1};

  /// Per-node RNG streams (see ScenarioConfig::node_rng_streams). Required
  /// by the sharded runner so per-node draws are interleaving-independent.
  bool node_rng_streams{false};
};

/// Outcome of one closed-loop traffic run — the row a market-penetration
/// sweep reports per cell.
struct TrafficRunResult {
  std::string name;
  double penetration{0.0};
  std::uint64_t vehicles_spawned{0};
  std::uint64_t equipped{0};
  std::uint64_t warnings_originated{0};
  std::uint64_t warning_receptions{0};  ///< distinct deliveries at the flood layer
  std::uint64_t reactions{0};           ///< receptions that installed a policy
  /// Least-squares slope (m/s) of first-slow position vs. time for
  /// vehicles upstream of the incident — the shockwave front's speed
  /// (negative = propagating upstream against traffic).
  double shockwave_speed_mps{0.0};
  std::uint64_t shockwave_points{0};  ///< samples behind the fit
  /// First time mean speed fell below congestion_speed_mps after the
  /// incident; -1 = never congested.
  double congestion_onset_s{-1.0};
  std::uint64_t slowed_vehicles{0};
  double final_mean_speed_mps{0.0};
  std::uint64_t events_executed{0};
};

/// Closed-loop traffic scenario: wires a TrafficFlow engine to a real
/// radio stack (802.11 broadcast + WarningFlood) for the equipped
/// subset of vehicles. Nodes are created as vehicles spawn and powered
/// down as they leave; the channel's spatial grid learns the dynamics
/// side's speed bound before anything moves, so accelerating IDM
/// vehicles never outrun their cull radius.
class TrafficScenario {
 public:
  explicit TrafficScenario(TrafficConfig config);
  ~TrafficScenario();

  TrafficScenario(const TrafficScenario&) = delete;
  TrafficScenario& operator=(const TrafficScenario&) = delete;

  /// Run to config.duration.
  void run();
  void run_until(sim::Time t);

  /// Collect the sweep-row metrics (valid any time; final after run()).
  TrafficRunResult result(std::string name = {});

  const TrafficConfig& config() const noexcept { return config_; }
  net::Env& env() noexcept { return env_; }
  mobility::TrafficFlow& flow() noexcept { return *flow_; }
  phy::Channel& channel() noexcept { return *channel_; }
  std::uint64_t equipped_count() const noexcept { return equipped_count_; }

 private:
  using VehicleId = mobility::TrafficFlow::VehicleId;

  /// Radio stack of one equipped vehicle. Declaration order matters:
  /// the flood unbinds its port from the node on destruction.
  struct Equipped {
    std::unique_ptr<phy::WirelessPhy> phy;
    std::unique_ptr<net::Node> node;
    std::unique_ptr<WarningFlood> flood;
    std::unique_ptr<EblBrakeReactor> reactor;
  };

  bool equip_roll(VehicleId v) const;
  void on_spawn(VehicleId v);
  void on_despawn(VehicleId v);
  void on_hard_brake(VehicleId v);
  void on_warning(VehicleId receiver, std::uint64_t warning_id);
  void trigger_incident();

  TrafficConfig config_;
  net::Env env_;
  std::shared_ptr<phy::PropagationModel> propagation_;
  std::unique_ptr<phy::Channel> channel_;
  std::unique_ptr<mobility::TrafficFlow> flow_;
  std::vector<std::unique_ptr<Equipped>> equipped_;  ///< indexed by vehicle id; sparse
  std::uint64_t equip_seed_{0};
  std::uint64_t equipped_count_{0};
  std::uint64_t warning_counter_{0};
  std::uint64_t warnings_originated_{0};
  std::uint64_t warning_receptions_{0};
  std::uint64_t reactions_{0};
  VehicleId incident_vehicle_{mobility::TrafficFlow::kNoVehicle};
  double incident_pos_{-1.0};
  sim::Time incident_time_{};
};

}  // namespace eblnet::core
