#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/summary.hpp"
#include "stats/time_series.hpp"
#include "trace/delay_analyzer.hpp"

namespace eblnet::core {

/// Plain-text rendering helpers shared by the bench binaries: each bench
/// prints the same rows/series the paper's figure or table shows.
namespace report {

/// "packet_id delay_s" rows, like the paper's delay-vs-packet-ID figures.
void print_delay_series(std::ostream& os, const std::string& title,
                        const std::vector<trace::DelaySample>& samples,
                        std::size_t max_points = SIZE_MAX);

/// "time_s mbps" rows, like the paper's throughput-vs-time figures.
void print_throughput_series(std::ostream& os, const std::string& title,
                             const stats::TimeSeries& series);

/// One "avg/min/max" row (the per-vehicle statistics given in the text).
void print_summary_row(std::ostream& os, const std::string& label, const stats::Summary& s,
                       const std::string& unit);

/// The paper's confidence sentence: half-width, level, relative precision.
void print_confidence(std::ostream& os, const std::string& label,
                      const stats::ConfidenceInterval& ci, const std::string& unit);

void print_header(std::ostream& os, const std::string& title);

}  // namespace report
}  // namespace eblnet::core
