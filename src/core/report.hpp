#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/traffic_scenario.hpp"
#include "core/trial.hpp"
#include "stats/confidence.hpp"
#include "stats/summary.hpp"
#include "stats/time_series.hpp"
#include "trace/delay_analyzer.hpp"

namespace eblnet::core {

class JsonWriter;

/// Plain-text rendering helpers shared by the bench binaries: each bench
/// prints the same rows/series the paper's figure or table shows.
namespace report {

/// Destination and formatting for the print_* helpers: the stream, the
/// decimal precision of the reported values, and the unit suffix. The
/// historical renderings use {os, 6, "s"} for delay series, {os, 4,
/// "Mb/s"} for throughput series, and {os, 4, unit} for summary and
/// confidence rows.
struct ReportContext {
  std::ostream& os;
  int precision{4};
  std::string unit;
};

/// "packet_id delay_s" rows, like the paper's delay-vs-packet-ID figures.
void print_delay_series(const ReportContext& ctx, const std::string& title,
                        const std::vector<trace::DelaySample>& samples,
                        std::size_t max_points = SIZE_MAX);

/// "time_s mbps" rows, like the paper's throughput-vs-time figures.
void print_throughput_series(const ReportContext& ctx, const std::string& title,
                             const stats::TimeSeries& series);

/// One "avg/min/max" row (the per-vehicle statistics given in the text).
void print_summary_row(const ReportContext& ctx, const std::string& label,
                       const stats::Summary& s);

/// The paper's confidence sentence: half-width, level, relative precision.
void print_confidence(const ReportContext& ctx, const std::string& label,
                      const stats::ConfidenceInterval& ci);

void print_header(const ReportContext& ctx, const std::string& title);

// --- JSON run manifests ------------------------------------------------

/// Manifest format version; bumped on any key addition/removal/rename.
/// v2: config gained a "faults" block, trials a "resilience" block, the
/// metrics block the fault counter layer, and "eblnet.resilience" joined
/// the manifest kinds.
/// v3: config gained a "reactive" block (closed-loop follower braking)
/// and "eblnet.traffic" (car-following market-penetration sweeps) joined
/// the manifest kinds.
/// v4: the metrics block gained the "campaign" run-cache counter layer
/// and "eblnet.campaign" (cached sweep orchestration) joined the
/// manifest kinds.
/// v5: config gained gated "beacon" (CAM/BSM beaconing), "blockage"
/// (intersection NLOS) and "edca" (802.11p EDCA MAC) blocks plus the
/// "nakagami_node_streams" flag; the metrics block gained the beacon
/// app counters/gauges (CBR, BRR, inter-reception time) and
/// "eblnet.beacon" joined the manifest kinds.
inline constexpr int kManifestSchemaVersion = 5;

/// Write the versioned JSON run manifest for one finished trial:
/// config, seed, per-layer metric counters, delay/throughput summaries
/// and the stopping-distance verdict. The metrics block reflects
/// TrialResult::metrics (all-zero when the trial ran without
/// `enable_metrics`).
void write_json(std::ostream& os, const TrialResult& r);

/// Emit one trial's manifest object through an existing JsonWriter (the
/// exact object write_json wraps) — campaign manifests and cache entries
/// embed trial objects inside their own documents with this.
void write_trial_json(JsonWriter& w, const TrialResult& r);

/// Emit a metrics block (the exact object the trial manifest's "metrics"
/// key carries) — campaign manifests reuse it for their merged
/// aggregate, keeping the per-layer grouping identical everywhere.
void write_metrics_json(JsonWriter& w, const sim::MetricsSnapshot& m);

/// Write a sweep manifest: every trial's manifest plus an aggregate block
/// (summed events and per-layer counters merged across trials).
void write_sweep_json(std::ostream& os, const std::string& name,
                      std::span<const TrialResult> results);

/// One cell of a resilience sweep: a faulted re-run of a paper trial at
/// one grid point (fault kind x magnitude), plus the fault-free
/// first-packet delay of the same trial for inflation accounting.
struct ResilienceCell {
  std::string label;  ///< human-readable cell id, e.g. "crash@t=4s"
  std::string axis;   ///< grid axis: "crash_at_s", "blackout_s", "per", ...
  double value{0.0};  ///< axis value at this cell
  /// Fault-free p1 initial-packet delay of the same trial; -1 = unknown.
  double baseline_initial_delay_s{-1.0};
  TrialResult result;  ///< the faulted run
};

/// Write a resilience-sweep manifest ("eblnet.resilience"): the
/// fault-free baseline trials in full, then one compact object per grid
/// cell with its resilience block, first-packet delay inflation over the
/// baseline, and the stopping-distance-under-failure verdict.
void write_resilience_json(std::ostream& os, const std::string& name,
                           std::span<const TrialResult> baselines,
                           std::span<const ResilienceCell> cells);

/// Write a traffic-sweep manifest ("eblnet.traffic"): the closed-loop
/// car-following configuration shared by the sweep, then one compact row
/// per market-penetration cell (shockwave speed, congestion onset,
/// warning counts).
void write_traffic_json(std::ostream& os, const std::string& name, const TrafficConfig& cfg,
                        std::span<const TrafficRunResult> cells);

/// Convenience: open `path`, write the manifest, throw on I/O failure.
void write_json_file(const std::string& path, const TrialResult& r);
void write_sweep_json_file(const std::string& path, const std::string& name,
                           std::span<const TrialResult> results);
void write_resilience_json_file(const std::string& path, const std::string& name,
                                std::span<const TrialResult> baselines,
                                std::span<const ResilienceCell> cells);
void write_traffic_json_file(const std::string& path, const std::string& name,
                             const TrafficConfig& cfg, std::span<const TrafficRunResult> cells);

}  // namespace report
}  // namespace eblnet::core
