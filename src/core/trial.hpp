#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/metrics.hpp"
#include "stats/confidence.hpp"
#include "stats/summary.hpp"
#include "stats/time_series.hpp"
#include "trace/delay_analyzer.hpp"

namespace eblnet::core {

/// Per-layer counter/gauge snapshot carried by a TrialResult. Empty (all
/// zero) unless the scenario ran with `enable_metrics`.
using TrialMetrics = sim::MetricsSnapshot;

/// Everything the paper reports for one trial, extracted from a finished
/// EblScenario run.
struct TrialResult {
  std::string name;
  ScenarioConfig config;

  /// Per-node, per-layer counters and gauges captured at end of run
  /// (residual interface-queue occupancy is folded in as kIfqResidual so
  /// the queue conservation identity holds exactly).
  TrialMetrics metrics;

  /// One-way delay samples per receiver (seq-ordered), per platoon.
  std::vector<trace::DelaySample> p1_middle;
  std::vector<trace::DelaySample> p1_trailing;
  std::vector<trace::DelaySample> p2_middle;
  std::vector<trace::DelaySample> p2_trailing;

  /// Platoon throughput time series (Mb/s, 100 ms samples).
  stats::TimeSeries p1_throughput;
  stats::TimeSeries p2_throughput;

  /// 95 % CI of the platoon-1 mean throughput over its communication
  /// window, via batch means (the paper's "confidence level analysis").
  stats::ConfidenceInterval p1_throughput_ci;
  stats::ConfidenceInterval p2_throughput_ci;

  /// Delay of the first packet delivered to each platoon-1 follower —
  /// the figure the stopping-distance analysis (§III.E) hinges on.
  double p1_initial_packet_delay_s{-1.0};

  /// Trace-level accounting.
  std::uint64_t ifq_drops{0};
  std::uint64_t phy_collisions{0};
  std::uint64_t mac_retry_drops{0};
  /// Routing-protocol frames actually radiated (RREQ/RREP/RERR/HELLO/
  /// DSDV updates at the MAC layer) — the control overhead.
  std::uint64_t routing_control_sends{0};
  /// Data frames radiated (including MAC retransmissions).
  std::uint64_t data_frame_sends{0};
  /// Scheduler events executed over the whole run — the denominator of
  /// the events/sec figure the perf harness (bench/perf_sweep) reports.
  std::uint64_t events_executed{0};

  /// Resilience under injected faults (sim::FaultPlan). `faults_enabled`
  /// mirrors `!config.faults.empty()`; the delivery ratios are computed
  /// from the trace even for fault-free runs so baseline and faulted
  /// cells compare like-for-like, while the windowed ratios and the
  /// counters stay at their inert defaults without a plan.
  struct Resilience {
    bool faults_enabled{false};

    /// Mean seconds from a detected link failure to the first completed
    /// replacement route discovery (Gauge::kAodvRerouteSeconds, averaged
    /// over every reroute in the run). -1 when no reroute completed or
    /// metrics were disabled.
    double time_to_reroute_s{-1.0};

    /// Application-level delivery ratio: distinct data packets received
    /// at their IP destination / distinct data packets offered, matched
    /// by (ip_src, ip_dst, app_seq) exactly like the delay analyzer.
    /// -1 when no packets were offered.
    double delivery_ratio{-1.0};
    /// Delivery ratio restricted to packets *sent* inside / after the
    /// outage window. -1 when the window is empty or nothing was offered
    /// in the corresponding span.
    double delivery_ratio_during_outage{-1.0};
    double delivery_ratio_after_outage{-1.0};

    /// Outage window: the hull [start, end] (seconds) of every scheduled
    /// fault event; a permanent fault (zero duration) extends the window
    /// to the end of the run. -1/-1 when the plan is empty.
    double outage_start_s{-1.0};
    double outage_end_s{-1.0};

    /// FaultController bookkeeping — exact even with metrics disabled.
    std::uint64_t crashes{0};
    std::uint64_t injected_drops{0};
    std::uint64_t jam_bursts{0};
  };
  Resilience resilience;

  // --- derived helpers ---
  std::vector<trace::DelaySample> p1_all() const;
  std::vector<trace::DelaySample> p2_all() const;
  stats::Summary p1_delay_summary() const { return trace::DelayAnalyzer::summarize(p1_all()); }
  stats::Summary p2_delay_summary() const { return trace::DelayAnalyzer::summarize(p2_all()); }
  stats::Summary p1_throughput_summary() const { return p1_throughput.summarize(); }
  stats::Summary p2_throughput_summary() const { return p2_throughput.summarize(); }

  /// Steady-state delay estimate: mean over samples after the transient
  /// (`skip` leading packets per flow).
  double p1_steady_state_delay_s(std::size_t skip = 50) const;

  /// Transient length of the platoon-1 middle-vehicle flow detected by
  /// MSER-5 (the paper eyeballs "approximately packet 50" from the
  /// figures; this computes it). Returns the first steady packet index.
  std::size_t p1_transient_end_mser() const;
};

/// The paper's three trials.
ScenarioConfig trial1_config();  ///< 1000 B, TDMA (the base trial)
ScenarioConfig trial2_config();  ///< 500 B, TDMA
ScenarioConfig trial3_config();  ///< 1000 B, 802.11

/// Configuration for an arbitrary (packet size, MAC) point, sharing the
/// calibrated traffic/stack parameters of the paper trials.
ScenarioConfig make_trial_config(std::size_t packet_bytes, MacType mac);

/// Run a configured scenario to completion and extract a TrialResult.
/// `after_run`, when provided, is invoked on the finished scenario before
/// it is torn down (e.g. to export a Nam animation or inspect agents).
TrialResult run_trial(const ScenarioConfig& config, std::string name = {},
                      const std::function<void(EblScenario&)>& after_run = {});

/// Build a TrialResult from the raw artefacts of a finished run — the
/// shared back half of run_trial, also fed by the sharded runner with a
/// k-way-merged trace and pointwise-summed throughput series. `faults`
/// may be null (e.g. merged runs, which reject fault plans); the
/// controller-sourced counters then stay zero.
TrialResult extract_trial_result(const ScenarioConfig& config, std::string name,
                                 const trace::TraceStore& records,
                                 stats::TimeSeries p1_throughput, stats::TimeSeries p2_throughput,
                                 TrialMetrics metrics, std::uint64_t events_executed,
                                 const sim::FaultController* faults);

}  // namespace eblnet::core
