#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/trial.hpp"
#include "sim/thread_pool.hpp"

namespace eblnet::core {

/// A (config, name) pair queued for execution. The name is carried into
/// TrialResult::name, as with run_trial().
struct TrialSpec {
  ScenarioConfig config;
  std::string name;
};

/// Parallel experiment engine: fans independent trials out across a
/// thread pool and returns their results **in input order**.
///
/// Every trial owns its whole simulation world (net::Env — scheduler,
/// RNG, uid allocator — plus scenario, nodes, trace), so running trials
/// concurrently is embarrassingly parallel and each per-seed result is
/// bit-identical to what a serial `run_trial` loop produces. The across-
/// seed sweeps (confidence tables, ablations) are the dominant wall-clock
/// cost of the reproduction; this layer is how they use all the cores.
///
/// Job count resolution (first match wins):
///   1. a positive `jobs` passed to the constructor;
///   2. the EBLNET_JOBS environment variable;
///   3. std::thread::hardware_concurrency().
/// One job means "run serially on the calling thread" (no worker thread
/// is spawned), which is also the fallback on single-core hosts.
///
/// `shards` > 1 switches run_trials() to the space-sharded conservative
/// engine (core::run_sharded_trial, DESIGN.md §3.9): each trial runs
/// k-way parallel *within* itself instead of only across trials. The two
/// axes multiply (jobs x shards threads), so the auto-resolved job count
/// is divided by the shard count; an explicit `jobs` is honored as given.
class Runner {
 public:
  /// `jobs` = 0 resolves via EBLNET_JOBS / hardware_concurrency().
  /// `shards` = 1 keeps trials on the serial engine (bit-identical to a
  /// build without the knob).
  explicit Runner(unsigned jobs = 0, std::size_t shards = 1);

  /// The resolved worker count (>= 1).
  unsigned jobs() const noexcept { return jobs_; }

  /// Shards per trial (>= 1; 1 = serial engine).
  std::size_t shards() const noexcept { return shards_; }

  /// Run every spec and return results in input order. A trial that
  /// throws aborts the batch: the first failing trial's exception (in
  /// input order) is rethrown after all in-flight trials finish.
  std::vector<TrialResult> run_trials(std::span<const TrialSpec> specs) const;

  /// Convenience: unnamed configs.
  std::vector<TrialResult> run_trials(std::span<const ScenarioConfig> configs) const;

  std::vector<TrialResult> run_trials(const std::vector<TrialSpec>& specs) const {
    return run_trials(std::span<const TrialSpec>{specs});
  }

  /// An in-flight asynchronous batch: `futures[i]` resolves to spec i's
  /// result; the pool (and the specs it references) stay alive as long
  /// as the handle does.
  struct AsyncTrials {
    std::shared_ptr<sim::ThreadPool> pool;
    std::vector<std::future<TrialResult>> futures;
  };

  /// Asynchronous variant of run_trials: submit every spec and return a
  /// future per spec immediately instead of blocking for the batch. The
  /// campaign runner streams its manifest in spec order with this while
  /// later cells are still executing; exceptions surface from get().
  AsyncTrials start_trials(std::vector<TrialSpec> specs) const;
  std::vector<TrialResult> run_trials(const std::vector<ScenarioConfig>& configs) const {
    return run_trials(std::span<const ScenarioConfig>{configs});
  }

  /// Generic parallel map: evaluate `fn(0) ... fn(n-1)` across the pool
  /// and return the results indexed by input. This is the primitive
  /// run_trials() is built on; benches whose experiment unit is not a
  /// ScenarioConfig (custom topologies, jammer setups, ...) use it
  /// directly. `fn` must be safe to call concurrently from `jobs()`
  /// threads — in this codebase that means each invocation builds its own
  /// net::Env / scenario and touches no shared mutable state.
  template <typename F, typename R = std::invoke_result_t<const F&, std::size_t>>
  std::vector<R> map(std::size_t n, const F& fn) const {
    sim::ThreadPool pool{jobs_ > 1 ? jobs_ : 0};
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(pool.submit([&fn, i] { return fn(i); }));
    }
    std::vector<R> results;
    results.reserve(n);
    for (auto& f : futures) results.push_back(f.get());
    return results;
  }

 private:
  unsigned jobs_;
  std::size_t shards_;
};

}  // namespace eblnet::core
