#pragma once

#include <functional>
#include <unordered_set>

#include "net/env.hpp"
#include "net/node.hpp"
#include "sim/timer.hpp"

namespace eblnet::core {

/// Flooding parameters.
struct FloodParams {
  std::uint8_t hop_limit{8};
  /// Random delay before rebroadcasting, to de-synchronise neighbours
  /// (the classic broadcast-storm mitigation).
  sim::Time rebroadcast_jitter{sim::Time::milliseconds(5)};
  std::size_t payload_bytes{100};
};

/// Multi-hop safety-warning dissemination: each node rebroadcasts every
/// warning it has not seen before (bounded by the hop limit), so a brake
/// warning reaches far beyond a single radio hop — the paper's
/// "extend the range of brake lights" taken past one hop, and the classic
/// VANET message-flooding primitive its future work points toward.
///
/// Warnings ride in UDP broadcast datagrams: the warning id travels in
/// Packet::app_seq and the remaining hop budget in the IP TTL, so no new
/// header type is needed.
class WarningFlood final : public net::PortHandler {
 public:
  WarningFlood(net::Env& env, net::Node& node, net::Port port, FloodParams params = {});
  ~WarningFlood() override;

  WarningFlood(const WarningFlood&) = delete;
  WarningFlood& operator=(const WarningFlood&) = delete;

  /// Originate a new warning; the id must be network-unique (callers
  /// typically combine node id and a local counter).
  void originate(std::uint64_t warning_id);

  /// Called once per distinct warning (never for our own), with the hop
  /// count it arrived over.
  using WarningCallback = std::function<void(std::uint64_t warning_id, unsigned hops)>;
  void set_on_warning(WarningCallback cb) { on_warning_ = std::move(cb); }

  void recv(net::Packet p) override;

  std::uint64_t warnings_received() const noexcept { return received_; }
  std::uint64_t rebroadcasts() const noexcept { return rebroadcasts_; }
  std::uint64_t duplicates_suppressed() const noexcept { return dups_; }

 private:
  void broadcast(std::uint64_t warning_id, std::uint8_t ttl);

  net::Env& env_;
  net::Node& node_;
  net::Port port_;
  FloodParams params_;
  std::unordered_set<std::uint64_t> seen_;
  WarningCallback on_warning_;
  std::uint64_t received_{0};
  std::uint64_t rebroadcasts_{0};
  std::uint64_t dups_{0};
};

}  // namespace eblnet::core
