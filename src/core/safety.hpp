#pragma once

namespace eblnet::core {

/// The paper's stopping-distance feasibility model (§III.E): how far a
/// trailing vehicle travels before the EBL notification arrives, as a
/// fraction of the inter-vehicle headway, and whether a same-rate
/// follow-the-leader stop avoids a collision.
struct StoppingAssessment {
  double speed_mps{22.352};          ///< 50 mph
  double headway_m{5.0};             ///< inter-vehicle separation
  double notification_delay_s{0.0};  ///< one-way delay of the initial EBL packet

  /// Distance covered at full speed while the notification is in flight.
  double distance_during_notification() const noexcept {
    return speed_mps * notification_delay_s;
  }

  /// The paper's headline number: notification distance as a fraction of
  /// the headway (1.0 == the whole gap is consumed before notice).
  double fraction_of_headway() const noexcept {
    return distance_during_notification() / headway_m;
  }

  /// If both vehicles brake at the same deceleration, the gap shrinks by
  /// exactly the distance the follower covers during its total reaction
  /// lag (network delay + driver/system reaction). Collision is avoided
  /// iff that closing distance stays below the headway.
  double closing_distance(double reaction_s) const noexcept {
    return speed_mps * (notification_delay_s + reaction_s);
  }
  bool collision_avoided(double reaction_s) const noexcept {
    return closing_distance(reaction_s) < headway_m;
  }

  /// Headroom (m) left after the stop; negative means impact depth.
  double margin(double reaction_s) const noexcept {
    return headway_m - closing_distance(reaction_s);
  }

  /// Maximum network delay tolerable for a given reaction time.
  double max_tolerable_delay(double reaction_s) const noexcept {
    return headway_m / speed_mps - reaction_s;
  }
};

}  // namespace eblnet::core
