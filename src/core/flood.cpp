#include "core/flood.hpp"

namespace eblnet::core {

WarningFlood::WarningFlood(net::Env& env, net::Node& node, net::Port port, FloodParams params)
    : env_{env}, node_{node}, port_{port}, params_{params} {
  node_.bind_port(port_, this);
}

WarningFlood::~WarningFlood() { node_.unbind_port(port_); }

void WarningFlood::originate(std::uint64_t warning_id) {
  seen_.insert(warning_id);
  broadcast(warning_id, params_.hop_limit);
}

void WarningFlood::recv(net::Packet p) {
  if (!p.udp || !p.ip) return;
  const std::uint64_t id = p.app_seq;
  if (!seen_.insert(id).second) {
    ++dups_;
    return;
  }
  ++received_;
  env_.trace(net::TraceAction::kRecv, net::TraceLayer::kAgent, node_.id(), p);
  const auto hops = static_cast<unsigned>(params_.hop_limit - p.ip->ttl + 1);
  if (on_warning_) on_warning_(id, hops);
  if (p.ip->ttl > 1) {
    ++rebroadcasts_;
    const std::uint8_t ttl = static_cast<std::uint8_t>(p.ip->ttl - 1);
    const sim::Time jitter =
        env_.rng_for(node_.id()).uniform_time(sim::Time::zero(), params_.rebroadcast_jitter);
    env_.scheduler().schedule_in(jitter, [this, id, ttl] { broadcast(id, ttl); });
  }
}

void WarningFlood::broadcast(std::uint64_t warning_id, std::uint8_t ttl) {
  net::Packet p;
  p.uid = env_.alloc_uid();
  p.type = net::PacketType::kUdpData;
  p.payload_bytes = params_.payload_bytes;
  p.created = env_.now();
  p.app_seq = warning_id;
  p.ip.emplace();
  p.ip->src = node_.id();
  p.ip->dst = net::kBroadcastAddress;
  p.ip->ttl = ttl;
  p.udp.emplace();
  p.udp->sport = port_;
  p.udp->dport = port_;
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kAgent, node_.id(), p);
  node_.send(std::move(p));
}

}  // namespace eblnet::core
