#include "core/sharded_scenario.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "app/traffic.hpp"
#include "core/flood.hpp"
#include "mac/edca.hpp"
#include "mac/mac_80211.hpp"
#include "mac/mac_tdma.hpp"
#include "phy/intersection_blockage.hpp"
#include "mobility/platoon.hpp"
#include "queue/drop_tail.hpp"
#include "queue/red.hpp"
#include "routing/aodv.hpp"
#include "routing/dsdv.hpp"
#include "routing/static_routing.hpp"
#include "sim/timer.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/tcp_sink.hpp"

namespace eblnet::core {
namespace {

constexpr net::Port kWarningPort = 7000;  // mirrors TrafficScenario

/// Axis-aligned hull of everywhere a shard's owned radios can ever be.
/// Soundness only requires containment — a generous pad just forwards a
/// few extra seam messages, which the destination's exact filter drops.
struct Aabb {
  double min_x{0.0}, min_y{0.0}, max_x{0.0}, max_y{0.0};
  bool valid{false};

  void cover(double x0, double y0, double x1, double y1) {
    const double lo_x = std::min(x0, x1), hi_x = std::max(x0, x1);
    const double lo_y = std::min(y0, y1), hi_y = std::max(y0, y1);
    if (!valid) {
      min_x = lo_x;
      min_y = lo_y;
      max_x = hi_x;
      max_y = hi_y;
      valid = true;
      return;
    }
    min_x = std::min(min_x, lo_x);
    min_y = std::min(min_y, lo_y);
    max_x = std::max(max_x, hi_x);
    max_y = std::max(max_y, hi_y);
  }

  void pad(double m) {
    if (!valid) return;
    min_x -= m;
    min_y -= m;
    max_x += m;
    max_y += m;
  }

  /// Does the circle (centre, radius) touch the box?
  bool intersects_circle(mobility::Vec2 c, double r) const {
    if (!valid) return false;
    const double cx = std::clamp(c.x, min_x, max_x);
    const double cy = std::clamp(c.y, min_y, max_y);
    const double dx = c.x - cx, dy = c.y - cy;
    return dx * dx + dy * dy <= r * r;
  }
};

/// Owner shard of node `i`: contiguous equal ranges over the flat node
/// order, which is contiguous in space for both scenario families.
std::size_t shard_of(std::size_t i, std::size_t total, std::size_t k) {
  return i * k / total;
}

/// Cross-seam forwarding radius: the farthest distance at which a
/// transmit at the configured power can still be sensed (and therefore
/// interfere), plus a containment margin.
double seam_reach_m(const phy::PropagationModel& prop, const phy::PhyParams& p) {
  return prop.range_for_threshold(p.tx_power_w, p.cs_threshold_w) + 1.0;
}

/// K-way merge of per-shard trace stores into one global, time-ordered
/// store. Each shard's store is non-decreasing in time (records are
/// appended in execution order), so a front-runner merge suffices; ties
/// break by shard index, the deterministic convention DESIGN.md §3.9
/// fixes for all cross-shard merges.
trace::TraceStore merge_traces(const std::vector<const trace::TraceStore*>& stores) {
  trace::TraceStore out;
  std::vector<std::size_t> idx(stores.size(), 0);
  for (;;) {
    std::size_t best = stores.size();
    sim::Time best_t{};
    for (std::size_t s = 0; s < stores.size(); ++s) {
      if (idx[s] >= stores[s]->size()) continue;
      const sim::Time t = (*stores[s])[idx[s]].t;
      if (best == stores.size() || t < best_t) {
        best = s;
        best_t = t;
      }
    }
    if (best == stores.size()) break;
    out.push_back((*stores[best])[idx[best]]);
    ++idx[best];
  }
  return out;
}

transport::TcpParams link_tcp_params(const EblConfig& cfg) {
  transport::TcpParams p = cfg.tcp;
  p.packet_size = cfg.packet_bytes;
  return p;
}

// Domain tags and the penetration roll, bit-compatible with
// TrafficScenario (the sharded run must equip the same vehicles).
constexpr std::uint64_t kFlowSeedTag = 0x5F10'77D0'0001ULL;
constexpr std::uint64_t kEquipSeedTag = 0xE901'BAD6'0002ULL;

double hash_unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

// ---------------------------------------------------------------------------
// Sharded intersection scenario
// ---------------------------------------------------------------------------

/// The intersection scenario split over K conservative shards. Mobility
/// (scripted platoons) is replicated in every shard — vehicle state is
/// closed-form, so replicas are bit-identical and state-change events
/// fire at identical simulation times everywhere. Radio stacks exist
/// only in their owner shard; a broadcast near a seam is replayed into
/// neighbouring shards at its exact transmit time (Channel::inject_remote),
/// where it goes through the identical candidate query and per-receiver
/// filter against that shard's owned radios.
class ShardedEblScenario {
 public:
  ShardedEblScenario(ScenarioConfig config, std::size_t shards);

  void run() { engine_->run(); }

  TrialResult extract(std::string name, ShardRunDiagnostics* diag);

 private:
  struct SenderHalf {
    std::unique_ptr<transport::TcpSender> sender;
    std::unique_ptr<app::TcpCbrFeeder> feeder;
  };

  /// One shard's world. Declaration order mirrors EblScenario for the
  /// same teardown-safety reasons (channel before phys, nodes before the
  /// port-bound transport endpoints, timers after env).
  struct Shard {
    explicit Shard(std::uint64_t seed) : env{seed} {}

    trace::TraceManager trace;
    net::Env env;
    std::shared_ptr<phy::PropagationModel> propagation;
    std::unique_ptr<phy::Channel> channel;
    std::unique_ptr<mobility::Platoon> platoon1;
    std::unique_ptr<mobility::Platoon> platoon2;
    std::vector<std::unique_ptr<phy::WirelessPhy>> phys;
    std::vector<std::unique_ptr<net::Node>> nodes;
    std::vector<net::Node*> node_by_id;  ///< global id -> owned node (or null)
    std::vector<SenderHalf> senders1, senders2;  ///< lead-owner shard only
    std::vector<std::unique_ptr<transport::TcpSink>> sinks1, sinks2;

    /// Raw cumulative sink bytes per platoon, sampled on the serial
    /// monitor's exact schedule. Kept as integers so the merged series
    /// (sum, then the monitor's delta arithmetic) is bit-identical to
    /// the serial monitor sampling the global sum.
    std::vector<sim::Time> sample_times;
    std::vector<std::uint64_t> bytes1, bytes2;
    std::unique_ptr<sim::Timer> sampler;
  };

  bool owned(std::size_t s, std::size_t gid) const {
    return shard_of(gid, total_, shards_.size()) == s;
  }
  void build_shard(std::size_t s);
  void build_links(std::size_t s, std::size_t base_gid, net::Port base_port,
                   mobility::Platoon& platoon, std::vector<SenderHalf>& senders,
                   std::vector<std::unique_ptr<transport::TcpSink>>& sinks);
  void on_lead_state(std::vector<SenderHalf>& senders, mobility::DriveState st);
  void compute_boxes(std::size_t shards);
  void install_seam_hook(std::size_t s);

  ScenarioConfig config_;
  std::size_t total_{0};  ///< 2 * platoon_size
  double reach_m_{0.0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Aabb> boxes_;  ///< per-shard owned-region hulls
  std::unique_ptr<sim::ShardEngine> engine_;
};

ShardedEblScenario::ShardedEblScenario(ScenarioConfig config, std::size_t shards)
    : config_{std::move(config)} {
  if (shards < 2 || shards > sim::ShardEngine::kMaxShards)
    throw std::invalid_argument{"ShardedEblScenario: shards must be in [2, 64]"};
  if (config_.platoon_size < 2)
    throw std::invalid_argument{"ShardedEblScenario: platoons need at least two vehicles"};
  if (!config_.faults.empty())
    throw std::invalid_argument{
        "ShardedEblScenario: fault plans are not supported with shards > 1"};
  if (config_.reactive.enabled)
    throw std::invalid_argument{
        "ShardedEblScenario: reactive braking is not supported with shards > 1"};
  if (config_.propagation != PropagationType::kTwoRay &&
      !(config_.propagation == PropagationType::kNakagami && config_.nakagami_node_streams))
    throw std::invalid_argument{
        "ShardedEblScenario: only deterministic (two-ray) propagation shards"};
  if (config_.beacon.enabled)
    throw std::invalid_argument{
        "ShardedEblScenario: beaconing is not supported with shards > 1"};
  config_.node_rng_streams = true;  // interleaving-independent per-node draws
  total_ = 2 * config_.platoon_size;

  compute_boxes(shards);
  // All Shard slots exist before any is built: ownership tests and the
  // uid stride read shards_.size(), which must already be final.
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) shards_.push_back(std::make_unique<Shard>(config_.seed));
  for (std::size_t s = 0; s < shards; ++s) build_shard(s);
  reach_m_ = seam_reach_m(*shards_[0]->propagation, config_.phy);

  std::vector<sim::Scheduler*> scheds;
  for (auto& sh : shards_) scheds.push_back(&sh->env.scheduler());
  engine_ = std::make_unique<sim::ShardEngine>(std::move(scheds), config_.duration);
  for (std::size_t s = 0; s < shards; ++s) install_seam_hook(s);
}

void ShardedEblScenario::compute_boxes(std::size_t shards) {
  const double gap = config_.vehicle_gap_m;
  const double v = config_.speed_mps;
  const double a = config_.decel_mps2;
  const std::size_t n = config_.platoon_size;
  const double cruise_dist = v * config_.platoon1_brake_at.to_seconds();
  const double brake_dist = mobility::Vehicle::stopping_distance(v, a);
  const double p1_start_y = -(cruise_dist + brake_dist);
  const double p2_travel =
      v * std::max(0.0, (config_.duration - config_.resolved_platoon2_depart()).to_seconds());

  boxes_.assign(shards, Aabb{});
  for (std::size_t i = 0; i < total_; ++i) {
    // Endpoint hull is exact: each vehicle's scripted motion is monotone
    // along one axis (platoon 1 drives north to the origin, platoon 2
    // departs east), so covering start and end covers the whole path.
    double x0, y0, x1, y1;
    if (i < n) {
      x0 = x1 = 0.0;
      y0 = p1_start_y - gap * static_cast<double>(i);
      y1 = -gap * static_cast<double>(i);
    } else {
      const double j = static_cast<double>(i - n);
      y0 = y1 = 0.0;
      x0 = -3.0 - gap * j;
      x1 = x0 + p2_travel;
    }
    boxes_[shard_of(i, total_, shards)].cover(x0, y0, x1, y1);
  }
  for (auto& b : boxes_) b.pad(5.0);
}

void ShardedEblScenario::build_shard(std::size_t s) {
  Shard& sh = *shards_[s];
  if (config_.enable_trace) sh.env.set_trace_sink(&sh.trace);
  sh.env.enable_node_rng_streams();
  sh.env.set_uid_stride(shards_.size(), s);
  sh.env.metrics().set_enabled(config_.enable_metrics);
  if (config_.propagation == PropagationType::kNakagami) {
    // Admitted only with nakagami_node_streams: keyed per-pair fades are a
    // pure function of (seed, tx, rx, transmit time), so every shard
    // reproduces exactly the fades the serial oracle would draw. The
    // shard-local Rng reference is never consumed in keyed mode.
    auto nakagami = std::make_shared<phy::NakagamiFading>(config_.nakagami_m, sh.env.rng());
    nakagami->enable_pair_streams(sim::mix_seed(config_.seed, phy::kPairFadeSeedTag));
    sh.propagation = std::move(nakagami);
  } else {
    sh.propagation = std::make_shared<phy::TwoRayGround>();
  }
  if (config_.blockage.enabled) {
    phy::IntersectionBlockageParams bp;
    bp.half_width_m = config_.blockage.half_width_m;
    bp.corner_loss_db = config_.blockage.corner_loss_db;
    sh.propagation = std::make_shared<phy::IntersectionBlockage>(sh.propagation, bp);
  }
  sh.channel = std::make_unique<phy::Channel>(sh.env, sh.propagation, config_.channel);

  // --- mobility replicas (identical to EblScenario::build_mobility) ---
  const double gap = config_.vehicle_gap_m;
  const double v = config_.speed_mps;
  const double a = config_.decel_mps2;
  const std::size_t n = config_.platoon_size;
  const double cruise_dist = v * config_.platoon1_brake_at.to_seconds();
  const double brake_dist = mobility::Vehicle::stopping_distance(v, a);
  const mobility::Vec2 p1_start{0.0, -(cruise_dist + brake_dist)};
  sh.platoon1 = std::make_unique<mobility::Platoon>(sh.env.scheduler(), n, p1_start,
                                                    mobility::Vec2{0.0, 1.0}, gap);
  sh.platoon1->drive_and_stop_at(mobility::Vec2{0.0, 0.0}, v, a);
  sh.platoon2 = std::make_unique<mobility::Platoon>(
      sh.env.scheduler(), n, mobility::Vec2{-3.0, 0.0}, mobility::Vec2{1.0, 0.0}, gap);
  sh.env.scheduler().schedule_at(config_.resolved_platoon2_depart(),
                                 [&sh, v] { sh.platoon2->cruise(v); });

  // --- owned node stacks (identical to EblScenario::build_nodes) ---
  mac::TdmaParams tdma = config_.tdma;
  if (tdma.num_slots < total_) tdma.num_slots = total_;
  sh.node_by_id.assign(total_, nullptr);

  for (std::size_t i = 0; i < total_; ++i) {
    if (!owned(s, i)) continue;
    const auto id = static_cast<net::NodeId>(i);
    auto node = std::make_unique<net::Node>(sh.env, id);

    const auto& vehicle = i < n ? sh.platoon1->vehicle(i) : sh.platoon2->vehicle(i - n);
    node->set_mobility(vehicle);

    auto phy = std::make_unique<phy::WirelessPhy>(
        sh.env, id, *sh.channel,
        [vehicle, &sh] { return vehicle->position_at(sh.env.now()); }, config_.phy);

    std::unique_ptr<net::PacketQueue> ifq;
    if (config_.use_red_queue) {
      queue::RedParams red = config_.red;
      red.capacity = config_.ifq_capacity;
      ifq = std::make_unique<queue::RedQueue>(sh.env.rng_for(id), red);
    } else {
      ifq = std::make_unique<queue::PriQueue>(config_.ifq_capacity);
    }
    std::unique_ptr<net::MacLayer> mac_layer;
    if (config_.mac == MacType::kTdma) {
      mac_layer = std::make_unique<mac::MacTdma>(sh.env, id, *phy, std::move(ifq), tdma,
                                                 static_cast<unsigned>(i));
    } else if (config_.mac == MacType::kEdca) {
      mac_layer = std::make_unique<mac::Edca>(sh.env, id, *phy, std::move(ifq), config_.edca);
    } else {
      mac_layer =
          std::make_unique<mac::Mac80211>(sh.env, id, *phy, std::move(ifq), config_.mac80211);
    }
    if (config_.use_arp) {
      mac_layer = std::make_unique<mac::ArpLayer>(sh.env, std::move(mac_layer), config_.arp);
    }

    std::unique_ptr<net::RoutingAgent> agent;
    switch (config_.routing) {
      case RoutingType::kAodv:
        agent = std::make_unique<routing::Aodv>(sh.env, id, config_.aodv);
        break;
      case RoutingType::kDsdv:
        agent = std::make_unique<routing::Dsdv>(sh.env, id, config_.dsdv);
        break;
      case RoutingType::kStatic:
        agent = std::make_unique<routing::StaticRouting>(sh.env, id, /*direct_by_default=*/true);
        break;
    }

    node->set_mac(std::move(mac_layer));
    node->set_routing(std::move(agent));
    sh.node_by_id[i] = node.get();
    sh.phys.push_back(std::move(phy));
    sh.nodes.push_back(std::move(node));
  }

  // --- application halves (split EblLink: sender side with the lead,
  // sink side with each follower) ---
  build_links(s, /*base_gid=*/0, /*base_port=*/1000, *sh.platoon1, sh.senders1, sh.sinks1);
  build_links(s, /*base_gid=*/n, /*base_port=*/3000, *sh.platoon2, sh.senders2, sh.sinks2);

  // --- throughput sampling on the serial monitor's schedule ---
  sh.sampler = std::make_unique<sim::Timer>(sh.env.scheduler(), [this, &sh] {
    std::uint64_t b1 = 0, b2 = 0;
    for (const auto& k : sh.sinks1) b1 += k->bytes();
    for (const auto& k : sh.sinks2) b2 += k->bytes();
    sh.sample_times.push_back(sh.sampler->expires_at());
    sh.bytes1.push_back(b1);
    sh.bytes2.push_back(b2);
    sh.sampler->schedule_in(config_.throughput_sample_interval);
  });
  sh.sampler->schedule_in(config_.throughput_sample_interval);
}

void ShardedEblScenario::build_links(std::size_t s, std::size_t base_gid, net::Port base_port,
                                     mobility::Platoon& platoon,
                                     std::vector<SenderHalf>& senders,
                                     std::vector<std::unique_ptr<transport::TcpSink>>& sinks) {
  Shard& sh = *shards_[s];
  const std::size_t n = config_.platoon_size;
  EblConfig ebl = config_.ebl;
  ebl.packet_bytes = config_.packet_bytes;

  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t lead_gid = base_gid;
    const std::size_t fol_gid = base_gid + i;
    if (owned(s, lead_gid)) {
      auto sender = std::make_unique<transport::TcpSender>(
          *sh.node_by_id[lead_gid], static_cast<net::Port>(base_port + i), link_tcp_params(ebl));
      sender->connect(static_cast<net::NodeId>(fol_gid), static_cast<net::Port>(base_port + 100));
      auto feeder = std::make_unique<app::TcpCbrFeeder>(
          sh.env, *sender, ebl.packet_bytes,
          app::CbrSource::interval_for_rate(ebl.packet_bytes, ebl.cbr_rate_bps));
      senders.push_back(SenderHalf{std::move(sender), std::move(feeder)});
    }
    if (owned(s, fol_gid)) {
      sinks.push_back(std::make_unique<transport::TcpSink>(
          *sh.node_by_id[fol_gid], static_cast<net::Port>(base_port + 100), ebl.sink));
    }
  }

  // The EBL start/stop rule lives with the sender halves: only the lead's
  // owner shard observes its (replicated, identically-timed) drive state.
  if (owned(s, base_gid)) {
    auto& lead_vehicle = *platoon.lead();
    auto* sv = &senders;
    lead_vehicle.subscribe(
        [this, sv](mobility::DriveState st) { on_lead_state(*sv, st); });
    sh.env.scheduler().schedule_in(sim::Time::zero(), [this, sv, &lead_vehicle] {
      on_lead_state(*sv, lead_vehicle.state());
    });
  }
}

void ShardedEblScenario::on_lead_state(std::vector<SenderHalf>& senders,
                                       mobility::DriveState st) {
  const bool communicate = st != mobility::DriveState::kCruising;
  for (auto& h : senders) {
    if (communicate) {
      h.feeder->start();
    } else {
      h.feeder->stop();
      h.sender->truncate_backlog();
    }
  }
}

void ShardedEblScenario::install_seam_hook(std::size_t s) {
  Shard& sh = *shards_[s];
  sh.channel->set_seam_hook([this, s, &sh](const phy::WirelessPhy& sender, const net::Packet& p,
                                           mobility::Vec2 from, sim::Time duration) {
    const sim::Time at = sh.env.now();
    for (std::size_t d = 0; d < shards_.size(); ++d) {
      if (d == s || !boxes_[d].intersects_circle(from, reach_m_)) continue;
      engine_->post(s, d, at,
                    [this, d, pkt = p, from, pw = sender.params().tx_power_w,
                     cid = sender.channel_id(), duration, src = sender.owner()]() mutable {
                      shards_[d]->channel->inject_remote(std::move(pkt), from, pw, cid, duration,
                                                         src);
                    });
    }
  });
}

TrialResult ShardedEblScenario::extract(std::string name, ShardRunDiagnostics* diag) {
  const std::size_t k = shards_.size();

  // Throughput: sum the raw per-shard byte counts (exact integers), then
  // apply the monitor's delta arithmetic once — bit-identical to the
  // serial monitor sampling the global sink sum.
  stats::TimeSeries tput1, tput2;
  std::size_t samples = shards_[0]->sample_times.size();
  for (const auto& sh : shards_) samples = std::min(samples, sh->sample_times.size());
  const double denom = config_.throughput_sample_interval.to_seconds() * 1e6;
  std::uint64_t prev1 = 0, prev2 = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    std::uint64_t b1 = 0, b2 = 0;
    for (const auto& sh : shards_) {
      b1 += sh->bytes1[i];
      b2 += sh->bytes2[i];
    }
    tput1.add(shards_[0]->sample_times[i], static_cast<double>(b1 - prev1) * 8.0 / denom);
    tput2.add(shards_[0]->sample_times[i], static_cast<double>(b2 - prev2) * 8.0 / denom);
    prev1 = b1;
    prev2 = b2;
  }

  TrialMetrics metrics;
  if (config_.enable_metrics) {
    for (auto& sh : shards_) {
      // Fold residual IFQ occupancy exactly like run_trial, per owner.
      for (std::size_t i = 0; i < total_; ++i) {
        const net::Node* node = sh->node_by_id[i];
        const net::MacLayer* mac = node ? node->mac() : nullptr;
        const net::PacketQueue* ifq = mac ? mac->interface_queue() : nullptr;
        if (ifq && ifq->length() > 0) {
          sh->env.metrics().add(static_cast<std::uint32_t>(i), sim::Counter::kIfqResidual,
                                ifq->length());
        }
      }
      metrics.merge(sh->env.metrics().snapshot());
    }
  }

  std::uint64_t events = 0;
  std::vector<const trace::TraceStore*> stores;
  for (auto& sh : shards_) {
    events += sh->env.scheduler().executed_count();
    stores.push_back(&sh->trace.records());
  }
  const trace::TraceStore merged = merge_traces(stores);

  if (diag != nullptr) {
    diag->shards = k;
    diag->lookahead_us = engine_->lift().to_seconds() * 1e6;
    diag->per_shard.clear();
    diag->seam_messages = engine_->seam_messages();
    diag->broadcasts = 0;
    diag->remote_injects = 0;
    diag->total_events = events;
    diag->stall_seconds_total = 0.0;
    for (std::size_t s = 0; s < k; ++s) {
      diag->per_shard.push_back(engine_->stats(s));
      diag->stall_seconds_total += engine_->stats(s).stall_seconds;
      diag->broadcasts += shards_[s]->channel->broadcasts();
      diag->remote_injects += shards_[s]->channel->remote_injects();
    }
  }

  return extract_trial_result(config_, std::move(name), merged, std::move(tput1),
                              std::move(tput2), std::move(metrics), events, nullptr);
}

// ---------------------------------------------------------------------------
// Sharded closed-loop traffic scenario
// ---------------------------------------------------------------------------

/// TrafficScenario split over K shards. The IDM flow is fully replicated
/// (synchronous fixed-tick integration is deterministic, so replicas
/// stay bit-identical as long as every state mutation is mirrored);
/// radio stacks are partitioned by (road, lane) at spawn. The only
/// cross-shard state mutations are warned-policy installations and they
/// are mirrored through the seam mailboxes at their exact apply time.
class ShardedTrafficScenario {
 public:
  ShardedTrafficScenario(TrafficConfig config, std::size_t shards);

  void run() { engine_->run(); }

  TrafficRunResult result(std::string name, ShardRunDiagnostics* diag);

 private:
  using VehicleId = mobility::TrafficFlow::VehicleId;

  struct Equipped {
    std::unique_ptr<phy::WirelessPhy> phy;
    std::unique_ptr<net::Node> node;
    std::unique_ptr<WarningFlood> flood;
    std::unique_ptr<EblBrakeReactor> reactor;
  };

  struct Shard {
    explicit Shard(std::uint64_t seed) : env{seed} {}

    net::Env env;
    std::shared_ptr<phy::PropagationModel> propagation;
    std::unique_ptr<phy::Channel> channel;
    std::unique_ptr<mobility::TrafficFlow> flow;
    std::vector<std::unique_ptr<Equipped>> equipped;  ///< by vehicle id; sparse
    std::uint64_t equipped_count{0};
    std::uint64_t warning_counter{0};
    std::uint64_t warnings_originated{0};
    std::uint64_t warning_receptions{0};
    std::uint64_t reactions{0};
    VehicleId incident_vehicle{mobility::TrafficFlow::kNoVehicle};
    double incident_pos{-1.0};
    sim::Time incident_time{};
  };

  std::size_t owner_of(const mobility::TrafficFlow& flow, VehicleId v) const {
    const std::size_t flat = lane_base_[flow.road_of(v)] + flow.lane_of(v);
    return flat * shards_.size() / total_lanes_;
  }
  void build_shard(std::size_t s);
  void on_spawn(std::size_t s, VehicleId v);
  void on_hard_brake(std::size_t s, VehicleId v);
  void on_warning(std::size_t s, VehicleId receiver, std::uint64_t warning_id);
  void trigger_incident(std::size_t s);
  void install_seam_hook(std::size_t s);

  TrafficConfig config_;
  std::uint64_t equip_seed_{0};
  std::vector<std::size_t> lane_base_;  ///< flat lane index base per road
  std::size_t total_lanes_{0};
  double reach_m_{0.0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Aabb> boxes_;
  std::unique_ptr<sim::ShardEngine> engine_;
};

ShardedTrafficScenario::ShardedTrafficScenario(TrafficConfig config, std::size_t shards)
    : config_{std::move(config)} {
  if (shards < 2 || shards > sim::ShardEngine::kMaxShards)
    throw std::invalid_argument{"ShardedTrafficScenario: shards must be in [2, 64]"};
  if (!(config_.penetration >= 0.0 && config_.penetration <= 1.0))
    throw std::invalid_argument{"ShardedTrafficScenario: penetration must be in [0, 1]"};
  if (config_.warn_range_m < 0.0)
    throw std::invalid_argument{"ShardedTrafficScenario: warn range must be >= 0"};
  config_.node_rng_streams = true;
  equip_seed_ = sim::mix_seed(config_.seed, kEquipSeedTag);

  // Flat lane indexing and per-shard spatial hulls from the road network.
  total_lanes_ = 0;
  lane_base_.clear();
  for (const auto& road : config_.flow.roads) {
    lane_base_.push_back(total_lanes_);
    total_lanes_ += static_cast<std::size_t>(road.lanes);
  }
  if (total_lanes_ == 0)
    throw std::invalid_argument{"ShardedTrafficScenario: road network has no lanes"};

  boxes_.assign(shards, Aabb{});
  for (std::size_t r = 0; r < config_.flow.roads.size(); ++r) {
    const auto& road = config_.flow.roads[r];
    for (int lane = 0; lane < road.lanes; ++lane) {
      const std::size_t flat = lane_base_[r] + static_cast<std::size_t>(lane);
      const std::size_t s = flat * shards / total_lanes_;
      const mobility::Vec2 end{road.origin.x + road.direction.x * road.length_m,
                               road.origin.y + road.direction.y * road.length_m};
      boxes_[s].cover(road.origin.x, road.origin.y, end.x, end.y);
    }
  }
  // Lateral lane offsets plus vehicle extent: pad by the full carriageway.
  double max_lateral = 5.0;
  for (const auto& road : config_.flow.roads)
    max_lateral = std::max(max_lateral, road.lanes * road.lane_width_m + 5.0);
  for (auto& b : boxes_) b.pad(max_lateral);

  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) shards_.push_back(std::make_unique<Shard>(config_.seed));
  for (std::size_t s = 0; s < shards; ++s) build_shard(s);
  reach_m_ = seam_reach_m(*shards_[0]->propagation, config_.phy);

  std::vector<sim::Scheduler*> scheds;
  for (auto& sh : shards_) scheds.push_back(&sh->env.scheduler());
  engine_ = std::make_unique<sim::ShardEngine>(std::move(scheds), config_.duration);
  for (std::size_t s = 0; s < shards; ++s) install_seam_hook(s);
}

void ShardedTrafficScenario::build_shard(std::size_t s) {
  Shard& sh = *shards_[s];
  sh.env.enable_node_rng_streams();
  sh.env.set_uid_stride(shards_.size(), s);
  sh.propagation = std::make_shared<phy::TwoRayGround>();
  sh.channel = std::make_unique<phy::Channel>(sh.env, sh.propagation, config_.channel);

  mobility::TrafficFlowParams fp = config_.flow;
  if (fp.end > config_.duration) fp.end = config_.duration;
  sh.flow = std::make_unique<mobility::TrafficFlow>(std::move(fp),
                                                    sim::mix_seed(config_.seed, kFlowSeedTag));
  sh.channel->raise_speed_bound(sh.flow->max_speed_bound_mps());

  sh.flow->set_on_spawn([this, s](VehicleId v) { on_spawn(s, v); });
  sh.flow->set_on_despawn([this, s](VehicleId v) {
    Shard& h = *shards_[s];
    if (v >= h.equipped.size() || !h.equipped[v]) return;
    h.equipped[v]->phy->set_down(true);
    h.equipped[v]->node->set_up(false);
  });
  sh.flow->set_on_hard_brake([this, s](VehicleId v) { on_hard_brake(s, v); });

  if (!config_.incident_at.is_zero()) {
    sh.env.scheduler().schedule_at(config_.incident_at, [this, s] { trigger_incident(s); });
  }
  sh.flow->start(sh.env.scheduler());
}

void ShardedTrafficScenario::on_spawn(std::size_t s, VehicleId v) {
  Shard& sh = *shards_[s];
  if (sh.equipped.size() <= v) sh.equipped.resize(v + 1);
  if (owner_of(*sh.flow, v) != s) return;
  // Stateless penetration roll (pure hash of seed and vehicle id), so
  // non-owner shards skipping it cannot shift anyone else's membership.
  if (config_.penetration <= 0.0) return;
  if (config_.penetration < 1.0 &&
      hash_unit(sim::mix_seed(equip_seed_, v)) >= config_.penetration)
    return;

  auto eq = std::make_unique<Equipped>();
  const auto id = static_cast<net::NodeId>(v);
  eq->node = std::make_unique<net::Node>(sh.env, id);
  eq->node->set_mobility(sh.flow->make_mobility(v));
  eq->phy = std::make_unique<phy::WirelessPhy>(
      sh.env, id, *sh.channel,
      [&sh, v] { return sh.flow->position_of(v, sh.env.now()); }, config_.phy);
  auto ifq = std::make_unique<queue::PriQueue>(config_.ifq_capacity);
  eq->node->set_mac(
      std::make_unique<mac::Mac80211>(sh.env, id, *eq->phy, std::move(ifq), config_.mac80211));
  eq->node->set_routing(
      std::make_unique<routing::StaticRouting>(sh.env, id, /*direct_by_default=*/true));
  eq->flood = std::make_unique<WarningFlood>(sh.env, *eq->node, kWarningPort, config_.flood);
  eq->flood->set_on_warning(
      [this, s, v](std::uint64_t warning_id, unsigned) { on_warning(s, v, warning_id); });
  eq->reactor = std::make_unique<EblBrakeReactor>(
      sh.env,
      [this, s, v] {
        Shard& h = *shards_[s];
        ++h.reactions;
        const sim::Time now = h.env.now();
        const sim::Time until = now + config_.policy_hold;
        h.flow->apply_policy(v, config_.warned_policy, until);
        // Mirror the (only) cross-shard state mutation into every
        // replica at its exact apply time, in deterministic seam order.
        for (std::size_t d = 0; d < shards_.size(); ++d) {
          if (d == s) continue;
          engine_->post(s, d, now, [this, d, v, until] {
            shards_[d]->flow->apply_policy(v, config_.warned_policy, until);
          });
        }
      },
      config_.reaction);

  sh.equipped[v] = std::move(eq);
  ++sh.equipped_count;
}

void ShardedTrafficScenario::on_hard_brake(std::size_t s, VehicleId v) {
  Shard& sh = *shards_[s];
  if (v >= sh.equipped.size() || !sh.equipped[v] || !sh.equipped[v]->node->up()) return;
  const std::uint64_t warning_id =
      (static_cast<std::uint64_t>(v) << 32) | sh.warning_counter++;
  sh.equipped[v]->flood->originate(warning_id);
  ++sh.warnings_originated;
}

void ShardedTrafficScenario::on_warning(std::size_t s, VehicleId receiver,
                                        std::uint64_t warning_id) {
  Shard& sh = *shards_[s];
  ++sh.warning_receptions;
  const auto origin = static_cast<VehicleId>(warning_id >> 32);
  if (origin >= sh.flow->spawned_total() || !sh.flow->active(origin)) return;
  if (!sh.flow->active(receiver)) return;
  if (sh.flow->road_of(origin) != sh.flow->road_of(receiver)) return;
  const double ahead = sh.flow->longitudinal_pos(origin) - sh.flow->longitudinal_pos(receiver);
  if (ahead <= 0.0 || ahead > config_.warn_range_m) return;
  sh.equipped[receiver]->reactor->notify();
}

void ShardedTrafficScenario::trigger_incident(std::size_t s) {
  Shard& sh = *shards_[s];
  const mobility::RoadSpec& road = sh.flow->params().roads.at(0);
  const double target =
      config_.incident_pos_m < 0.0 ? road.length_m / 2.0 : config_.incident_pos_m;
  VehicleId best = mobility::TrafficFlow::kNoVehicle;
  double best_dist = 1e300;
  for (VehicleId v = 0; v < sh.flow->spawned_total(); ++v) {
    if (!sh.flow->active(v) || sh.flow->road_of(v) != 0 || sh.flow->lane_of(v) != 0) continue;
    const double d = std::abs(sh.flow->longitudinal_pos(v) - target);
    if (d < best_dist) {
      best_dist = d;
      best = v;
    }
  }
  if (best == mobility::TrafficFlow::kNoVehicle) return;
  // Replicas are bit-identical, so every shard picks the same vehicle and
  // applies the same forced stop — no seam message needed.
  sh.incident_vehicle = best;
  sh.incident_pos = sh.flow->longitudinal_pos(best);
  sh.incident_time = sh.env.now();
  sh.flow->arm_slow_stats();
  sh.flow->force_stop(best, config_.incident_decel_mps2,
                      sh.env.now() + config_.incident_hold);
}

void ShardedTrafficScenario::install_seam_hook(std::size_t s) {
  Shard& sh = *shards_[s];
  sh.channel->set_seam_hook([this, s, &sh](const phy::WirelessPhy& sender, const net::Packet& p,
                                           mobility::Vec2 from, sim::Time duration) {
    const sim::Time at = sh.env.now();
    for (std::size_t d = 0; d < shards_.size(); ++d) {
      if (d == s || !boxes_[d].intersects_circle(from, reach_m_)) continue;
      engine_->post(s, d, at,
                    [this, d, pkt = p, from, pw = sender.params().tx_power_w,
                     cid = sender.channel_id(), duration, src = sender.owner()]() mutable {
                      shards_[d]->channel->inject_remote(std::move(pkt), from, pw, cid, duration,
                                                         src);
                    });
    }
  });
}

TrafficRunResult ShardedTrafficScenario::result(std::string name, ShardRunDiagnostics* diag) {
  const Shard& s0 = *shards_[0];
  TrafficRunResult r;
  r.name = std::move(name);
  r.penetration = config_.penetration;
  r.vehicles_spawned = s0.flow->spawned_total();
  for (const auto& sh : shards_) {
    r.equipped += sh->equipped_count;
    r.warnings_originated += sh->warnings_originated;
    r.warning_receptions += sh->warning_receptions;
    r.reactions += sh->reactions;
    r.events_executed += sh->env.scheduler().executed_count();
  }

  // Flow-derived statistics come from shard 0's replica (all replicas are
  // identical); the incident bookkeeping likewise.
  double sum_t = 0.0, sum_p = 0.0, sum_tt = 0.0, sum_tp = 0.0;
  std::uint64_t n = 0;
  for (const auto& e : s0.flow->slow_events()) {
    if (e.road != 0) continue;
    if (s0.incident_pos >= 0.0 && e.pos_m > s0.incident_pos) continue;
    if (e.vehicle == s0.incident_vehicle) continue;
    sum_t += e.t_s;
    sum_p += e.pos_m;
    sum_tt += e.t_s * e.t_s;
    sum_tp += e.t_s * e.pos_m;
    ++n;
  }
  r.shockwave_points = n;
  const double det = static_cast<double>(n) * sum_tt - sum_t * sum_t;
  if (n >= 2 && det != 0.0) r.shockwave_speed_mps = (n * sum_tp - sum_t * sum_p) / det;
  r.slowed_vehicles = s0.flow->slow_events().size();

  const double incident_s = s0.incident_time.to_seconds();
  for (const auto& sample : s0.flow->speed_series()) {
    if (s0.incident_vehicle != mobility::TrafficFlow::kNoVehicle && sample.t_s >= incident_s &&
        sample.active > 0 && sample.mean_speed_mps < config_.congestion_speed_mps &&
        r.congestion_onset_s < 0.0) {
      r.congestion_onset_s = sample.t_s;
    }
    if (sample.active > 0) r.final_mean_speed_mps = sample.mean_speed_mps;
  }

  if (diag != nullptr) {
    diag->shards = shards_.size();
    diag->lookahead_us = engine_->lift().to_seconds() * 1e6;
    diag->per_shard.clear();
    diag->seam_messages = engine_->seam_messages();
    diag->broadcasts = 0;
    diag->remote_injects = 0;
    diag->total_events = r.events_executed;
    diag->stall_seconds_total = 0.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      diag->per_shard.push_back(engine_->stats(s));
      diag->stall_seconds_total += engine_->stats(s).stall_seconds;
      diag->broadcasts += shards_[s]->channel->broadcasts();
      diag->remote_injects += shards_[s]->channel->remote_injects();
    }
  }
  return r;
}

}  // namespace

TrialResult run_sharded_trial(const ScenarioConfig& config, std::size_t shards, std::string name,
                              ShardRunDiagnostics* diag) {
  if (shards <= 1) {
    if (diag != nullptr) *diag = ShardRunDiagnostics{};
    return run_trial(config, std::move(name));
  }
  ShardedEblScenario scenario{config, shards};
  scenario.run();
  return scenario.extract(std::move(name), diag);
}

TrafficRunResult run_sharded_traffic(const TrafficConfig& config, std::size_t shards,
                                     std::string name, ShardRunDiagnostics* diag) {
  if (shards <= 1) {
    if (diag != nullptr) *diag = ShardRunDiagnostics{};
    TrafficScenario scenario{config};
    scenario.run();
    return scenario.result(std::move(name));
  }
  ShardedTrafficScenario scenario{config, shards};
  scenario.run();
  return scenario.result(std::move(name), diag);
}

}  // namespace eblnet::core
