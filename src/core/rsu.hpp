#pragma once

#include <functional>

#include "app/traffic.hpp"
#include "net/node.hpp"
#include "transport/udp.hpp"

namespace eblnet::core {

/// A roadside unit broadcasting warning beacons — the
/// vehicle-to-infrastructure half of the CAMP/VSCC scenario family the
/// paper's introduction lists (Curve Speed Warning, Traffic Signal
/// Violation Warning). Beacons are UDP broadcasts: every vehicle whose
/// radio can decode them is "warned".
class RoadsideUnit {
 public:
  RoadsideUnit(net::Env& env, net::Node& node, net::Port port, std::size_t payload_bytes,
               sim::Time interval);

  void start() { beacons_.start(); }
  void stop() { beacons_.stop(); }

  std::uint64_t beacons_sent() const noexcept { return udp_.packets_sent(); }
  net::NodeId node_id() const noexcept { return node_.id(); }

 private:
  net::Node& node_;
  transport::UdpAgent udp_;
  app::CbrSource beacons_;
};

/// Vehicle-side receiver for RSU beacons: records when the first warning
/// arrived and where the vehicle was at that moment, which is what a
/// curve-speed/TSV warning evaluation needs (warning distance -> time
/// available to slow down).
class WarningReceiver {
 public:
  WarningReceiver(net::Node& node, net::Port port);

  bool warned() const noexcept { return warned_; }
  sim::Time warned_at() const noexcept { return warned_at_; }
  mobility::Vec2 position_at_warning() const noexcept { return position_; }
  std::uint64_t beacons_received() const noexcept { return udp_.packets_received(); }

  /// Notification hook for applications (e.g. trigger braking).
  void set_on_first_warning(std::function<void()> cb) { on_first_ = std::move(cb); }

 private:
  net::Node& node_;
  transport::UdpAgent udp_;
  bool warned_{false};
  sim::Time warned_at_{};
  mobility::Vec2 position_{};
  std::function<void()> on_first_;
};

}  // namespace eblnet::core
