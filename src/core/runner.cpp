#include "core/runner.hpp"

#include <algorithm>

#include "core/sharded_scenario.hpp"

namespace eblnet::core {

namespace {

unsigned resolve_jobs(unsigned jobs, std::size_t shards) {
  if (jobs > 0) return jobs;
  const unsigned base = sim::ThreadPool::default_concurrency();
  if (shards <= 1) return base;
  // Each trial already runs `shards` threads: keep jobs x shards near the
  // core count instead of oversubscribing by the shard factor.
  return std::max(1u, base / static_cast<unsigned>(std::min<std::size_t>(shards, base)));
}

}  // namespace

Runner::Runner(unsigned jobs, std::size_t shards)
    : jobs_{resolve_jobs(jobs, shards)}, shards_{shards > 0 ? shards : 1} {}

std::vector<TrialResult> Runner::run_trials(std::span<const TrialSpec> specs) const {
  return map(specs.size(), [this, &specs](std::size_t i) {
    return shards_ > 1 ? run_sharded_trial(specs[i].config, shards_, specs[i].name)
                       : run_trial(specs[i].config, specs[i].name);
  });
}

Runner::AsyncTrials Runner::start_trials(std::vector<TrialSpec> specs) const {
  AsyncTrials batch;
  batch.pool = std::make_shared<sim::ThreadPool>(jobs_ > 1 ? jobs_ : 0);
  // The specs outlive the submit lambdas via shared ownership: the
  // handle's pool joins before the last reference can drop.
  auto shared_specs = std::make_shared<std::vector<TrialSpec>>(std::move(specs));
  batch.futures.reserve(shared_specs->size());
  for (std::size_t i = 0; i < shared_specs->size(); ++i) {
    batch.futures.push_back(batch.pool->submit([shared_specs, i, shards = shards_] {
      const TrialSpec& s = (*shared_specs)[i];
      return shards > 1 ? run_sharded_trial(s.config, shards, s.name)
                        : run_trial(s.config, s.name);
    }));
  }
  return batch;
}

std::vector<TrialResult> Runner::run_trials(std::span<const ScenarioConfig> configs) const {
  return map(configs.size(), [this, &configs](std::size_t i) {
    return shards_ > 1 ? run_sharded_trial(configs[i], shards_) : run_trial(configs[i]);
  });
}

}  // namespace eblnet::core
