#include "core/runner.hpp"

namespace eblnet::core {

Runner::Runner(unsigned jobs)
    : jobs_{jobs > 0 ? jobs : sim::ThreadPool::default_concurrency()} {}

std::vector<TrialResult> Runner::run_trials(std::span<const TrialSpec> specs) const {
  return map(specs.size(),
             [&specs](std::size_t i) { return run_trial(specs[i].config, specs[i].name); });
}

std::vector<TrialResult> Runner::run_trials(std::span<const ScenarioConfig> configs) const {
  return map(configs.size(), [&configs](std::size_t i) { return run_trial(configs[i]); });
}

}  // namespace eblnet::core
