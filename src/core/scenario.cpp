#include "core/scenario.hpp"

#include <stdexcept>

#include "app/beacon.hpp"
#include "phy/intersection_blockage.hpp"
#include "queue/drop_tail.hpp"
#include "routing/static_routing.hpp"

namespace eblnet::core {

const char* to_string(MacType m) noexcept {
  switch (m) {
    case MacType::kTdma: return "TDMA";
    case MacType::k80211: return "802.11";
    case MacType::kEdca: return "EDCA";
  }
  return "?";
}

const char* to_string(RoutingType r) noexcept {
  switch (r) {
    case RoutingType::kAodv: return "AODV";
    case RoutingType::kDsdv: return "DSDV";
    case RoutingType::kStatic: return "static";
  }
  return "?";
}

const char* to_string(PropagationType p) noexcept {
  switch (p) {
    case PropagationType::kTwoRay: return "two-ray";
    case PropagationType::kNakagami: return "nakagami";
  }
  return "?";
}

routing::Aodv& EblScenario::aodv(std::size_t i) {
  if (config_.routing != RoutingType::kAodv)
    throw std::logic_error{"EblScenario: scenario is not running AODV"};
  return *aodvs_.at(i);
}

EblBrakeReactor& EblScenario::reactor(std::size_t i) {
  if (!config_.reactive.enabled)
    throw std::logic_error{"EblScenario: reactive braking is not enabled"};
  return *reactors_.at(i);
}

CollisionMonitor& EblScenario::collisions() {
  if (!config_.reactive.enabled)
    throw std::logic_error{"EblScenario: reactive braking is not enabled"};
  return *collision_monitor_;
}

app::Beacon& EblScenario::beacon(std::size_t i) {
  if (!config_.beacon.enabled)
    throw std::logic_error{"EblScenario: beaconing is not enabled"};
  return *beacons_.at(i);
}

EblScenario::EblScenario(ScenarioConfig config) : config_{std::move(config)}, env_{config_.seed} {
  if (config_.platoon_size < 2)
    throw std::invalid_argument{"EblScenario: platoons need at least two vehicles"};
  if (config_.enable_trace) env_.set_trace_sink(&trace_);
  if (config_.node_rng_streams) env_.enable_node_rng_streams();
  env_.metrics().set_enabled(config_.enable_metrics);
  if (config_.propagation == PropagationType::kNakagami) {
    auto nakagami = std::make_shared<phy::NakagamiFading>(config_.nakagami_m, env_.rng());
    if (config_.nakagami_node_streams)
      nakagami->enable_pair_streams(sim::mix_seed(config_.seed, phy::kPairFadeSeedTag));
    propagation_ = std::move(nakagami);
  } else {
    propagation_ = std::make_shared<phy::TwoRayGround>();
  }
  if (config_.blockage.enabled) {
    phy::IntersectionBlockageParams bp;
    bp.half_width_m = config_.blockage.half_width_m;
    bp.corner_loss_db = config_.blockage.corner_loss_db;
    propagation_ = std::make_shared<phy::IntersectionBlockage>(propagation_, bp);
  }
  channel_ = std::make_unique<phy::Channel>(env_, propagation_, config_.channel);
  build_mobility();
  build_nodes();
  build_traffic();
  // Fault wiring: a node crash powers the radio off (detaching it from
  // the channel and the spatial grid, which kills in-flight deliveries)
  // and cascades through MAC + routing via Node::set_up.
  env_.faults().set_node_state_hook([this](std::uint32_t n, bool up) {
    if (n >= nodes_.size()) return;
    phys_[n]->set_down(!up);
    nodes_[n]->set_up(up);
  });
  env_.install_faults(config_.faults);
}

EblScenario::~EblScenario() = default;

void EblScenario::build_mobility() {
  const double gap = config_.vehicle_gap_m;
  const double v = config_.speed_mps;
  const double a = config_.decel_mps2;
  const std::size_t n = config_.platoon_size;

  // Platoon 1 approaches the intersection (origin) from the south so that
  // braking starts exactly at platoon1_brake_at and the lead stops at the
  // origin.
  const double cruise_dist = v * config_.platoon1_brake_at.to_seconds();
  const double brake_dist = mobility::Vehicle::stopping_distance(v, a);
  const mobility::Vec2 p1_start{0.0, -(cruise_dist + brake_dist)};
  platoon1_ = std::make_unique<mobility::Platoon>(env_.scheduler(), n, p1_start,
                                                  mobility::Vec2{0.0, 1.0}, gap);
  if (config_.reactive.enabled) {
    // Closed loop: only the lead's brake is scripted (same instant and
    // decel as the scripted scenario, so it still stops at the origin).
    // Followers keep cruising until their reactor hears the EBL message.
    platoon1_->cruise(v);
    env_.scheduler().schedule_at(config_.platoon1_brake_at,
                                 [this, a] { platoon1_->lead()->brake(a); });
  } else {
    platoon1_->drive_and_stop_at(mobility::Vec2{0.0, 0.0}, v, a);
  }

  // Platoon 2 waits on the cross street just west of the intersection and
  // departs east at platoon2_depart.
  platoon2_ = std::make_unique<mobility::Platoon>(env_.scheduler(), n,
                                                  mobility::Vec2{-3.0, 0.0},
                                                  mobility::Vec2{1.0, 0.0}, gap);
  env_.scheduler().schedule_at(config_.resolved_platoon2_depart(),
                               [this, v] { platoon2_->cruise(v); });
}

void EblScenario::build_nodes() {
  const std::size_t n = config_.platoon_size;
  const std::size_t total = 2 * n;

  mac::TdmaParams tdma = config_.tdma;
  // The frame must at least fit every node; beyond that the configured
  // slot count stands (NS-2 defaults to 64-slot frames regardless of the
  // active population).
  if (tdma.num_slots < total) tdma.num_slots = total;

  for (std::size_t i = 0; i < total; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    auto node = std::make_unique<net::Node>(env_, id);

    const auto& vehicle =
        i < n ? platoon1_->vehicle(i) : platoon2_->vehicle(i - n);
    node->set_mobility(vehicle);

    auto phy = std::make_unique<phy::WirelessPhy>(
        env_, id, *channel_,
        [vehicle, this] { return vehicle->position_at(env_.now()); }, config_.phy);

    std::unique_ptr<net::PacketQueue> ifq;
    if (config_.use_red_queue) {
      queue::RedParams red = config_.red;
      red.capacity = config_.ifq_capacity;
      ifq = std::make_unique<queue::RedQueue>(env_.rng_for(id), red);
    } else {
      ifq = std::make_unique<queue::PriQueue>(config_.ifq_capacity);
    }
    std::unique_ptr<net::MacLayer> mac_layer;
    if (config_.mac == MacType::kTdma) {
      mac_layer = std::make_unique<mac::MacTdma>(env_, id, *phy, std::move(ifq), tdma,
                                                 static_cast<unsigned>(i));
    } else if (config_.mac == MacType::kEdca) {
      mac_layer = std::make_unique<mac::Edca>(env_, id, *phy, std::move(ifq), config_.edca);
    } else {
      mac_layer = std::make_unique<mac::Mac80211>(env_, id, *phy, std::move(ifq),
                                                  config_.mac80211);
    }

    if (config_.use_arp) {
      mac_layer = std::make_unique<mac::ArpLayer>(env_, std::move(mac_layer), config_.arp);
    }

    std::unique_ptr<net::RoutingAgent> agent;
    switch (config_.routing) {
      case RoutingType::kAodv: {
        auto aodv = std::make_unique<routing::Aodv>(env_, id, config_.aodv);
        aodvs_.push_back(aodv.get());
        agent = std::move(aodv);
        break;
      }
      case RoutingType::kDsdv:
        agent = std::make_unique<routing::Dsdv>(env_, id, config_.dsdv);
        break;
      case RoutingType::kStatic:
        // All six vehicles are a single radio hop apart in this scenario.
        agent = std::make_unique<routing::StaticRouting>(env_, id, /*direct_by_default=*/true);
        break;
    }

    node->set_mac(std::move(mac_layer));
    node->set_routing(std::move(agent));

    phys_.push_back(std::move(phy));
    nodes_.push_back(std::move(node));
  }
}

void EblScenario::build_traffic() {
  const std::size_t n = config_.platoon_size;
  std::vector<net::Node*> p1_nodes, p2_nodes;
  for (std::size_t i = 0; i < n; ++i) p1_nodes.push_back(nodes_[i].get());
  for (std::size_t i = 0; i < n; ++i) p2_nodes.push_back(nodes_[n + i].get());

  EblConfig ebl = config_.ebl;
  ebl.packet_bytes = config_.packet_bytes;

  ebl1_ = std::make_unique<PlatoonEbl>(env_, *platoon1_, p1_nodes, ebl, /*base_port=*/1000);
  ebl2_ = std::make_unique<PlatoonEbl>(env_, *platoon2_, p2_nodes, ebl, /*base_port=*/3000);

  tput1_ = std::make_unique<trace::ThroughputMonitor>(
      env_, [this] { return ebl1_->total_sink_bytes(); }, config_.throughput_sample_interval);
  tput2_ = std::make_unique<trace::ThroughputMonitor>(
      env_, [this] { return ebl2_->total_sink_bytes(); }, config_.throughput_sample_interval);
  tput1_->start();
  tput2_->start();

  if (config_.beacon.enabled) {
    app::BeaconParams bp;
    bp.interval = config_.beacon.interval;
    bp.payload_bytes = config_.beacon.payload_bytes;
    bp.priority = config_.beacon.priority;
    bp.port = config_.beacon.port;
    bp.phase_seed = config_.seed;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      beacons_.push_back(
          std::make_unique<app::Beacon>(env_, *nodes_[i], phys_[i].get(), bp));
      beacons_.back()->start();
    }
  }

  if (config_.reactive.enabled) {
    // EblLink i feeds follower i+1's sink, so reactor i brakes the
    // vehicle its link actually notifies.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      reactors_.push_back(std::make_unique<EblBrakeReactor>(
          env_, ebl1_->mutable_link(i).mutable_sink(), platoon1_->vehicle(i + 1),
          config_.reactive.decel_mps2, config_.reactive.reaction));
    }
    std::vector<std::shared_ptr<mobility::Vehicle>> column;
    for (std::size_t i = 0; i < n; ++i) column.push_back(platoon1_->vehicle(i));
    collision_monitor_ =
        std::make_unique<CollisionMonitor>(env_, std::move(column), config_.reactive.min_gap_m);
    collision_monitor_->start();
  }
}

void EblScenario::run() { run_until(config_.duration); }

void EblScenario::run_until(sim::Time t) { env_.scheduler().run_until(t); }

}  // namespace eblnet::core
