#include "core/rsu.hpp"

namespace eblnet::core {

RoadsideUnit::RoadsideUnit(net::Env& env, net::Node& node, net::Port port,
                           std::size_t payload_bytes, sim::Time interval)
    : node_{node},
      udp_{node, static_cast<net::Port>(port + 10000)},  // source port; beacons go to `port`
      beacons_{env, udp_, payload_bytes, interval} {
  udp_.connect(net::kBroadcastAddress, port);
}

WarningReceiver::WarningReceiver(net::Node& node, net::Port port)
    : node_{node}, udp_{node, port} {
  udp_.set_recv_callback([this](const net::Packet&) {
    if (warned_) return;
    warned_ = true;
    warned_at_ = node_.env().now();
    position_ = node_.position();
    if (on_first_) on_first_();
  });
}

}  // namespace eblnet::core
