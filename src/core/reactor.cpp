#include "core/reactor.hpp"

#include <stdexcept>

namespace eblnet::core {

EblBrakeReactor::EblBrakeReactor(net::Env& env, std::function<void()> policy, sim::Time reaction)
    : env_{env},
      policy_{std::move(policy)},
      reaction_{reaction},
      actuate_timer_{env.scheduler(), [this] {
                       braked_at_ = env_.now();
                       policy_();
                     }} {
  if (!policy_) throw std::invalid_argument{"EblBrakeReactor: policy required"};
  if (reaction < sim::Time::zero())
    throw std::invalid_argument{"EblBrakeReactor: reaction must be >= 0"};
}

EblBrakeReactor::EblBrakeReactor(net::Env& env, transport::TcpSink& sink,
                                 std::function<void()> policy, sim::Time reaction)
    : EblBrakeReactor{env, std::move(policy), reaction} {
  sink.set_data_callback([this](const net::Packet&) { notify(); });
}

namespace {

// Validates before the delegated constructor hooks the sink, so a throw
// can never leave a data callback pointing at a dead reactor.
std::function<void()> make_brake_policy(std::shared_ptr<mobility::Vehicle> vehicle, double decel) {
  if (!vehicle) throw std::invalid_argument{"EblBrakeReactor: vehicle required"};
  if (decel <= 0.0) throw std::invalid_argument{"EblBrakeReactor: decel must be > 0"};
  return [vehicle = std::move(vehicle), decel] { vehicle->brake(decel); };
}

}  // namespace

EblBrakeReactor::EblBrakeReactor(net::Env& env, transport::TcpSink& sink,
                                 std::shared_ptr<mobility::Vehicle> vehicle, double decel,
                                 sim::Time reaction)
    : EblBrakeReactor{env, sink, make_brake_policy(std::move(vehicle), decel), reaction} {}

void EblBrakeReactor::notify() {
  if (triggered_) return;
  triggered_ = true;
  notified_at_ = env_.now();
  actuate_timer_.schedule_in(reaction_);
}

void EblBrakeReactor::reset() {
  triggered_ = false;
  actuate_timer_.cancel();
}

CollisionMonitor::CollisionMonitor(net::Env& env,
                                   std::vector<std::shared_ptr<mobility::Vehicle>> column,
                                   double min_gap, sim::Time sample_interval)
    : env_{env},
      column_{std::move(column)},
      min_gap_{min_gap},
      interval_{sample_interval},
      timer_{env.scheduler(), [this] { sample(); }} {
  if (column_.size() < 2) throw std::invalid_argument{"CollisionMonitor: need >= 2 vehicles"};
  if (sample_interval <= sim::Time::zero())
    throw std::invalid_argument{"CollisionMonitor: sample interval must be > 0"};
}

void CollisionMonitor::start() {
  if (running_) return;
  running_ = true;
  timer_.schedule_in(interval_);
}

void CollisionMonitor::stop() {
  running_ = false;
  timer_.cancel();
}

void CollisionMonitor::sample() {
  if (!running_ || collided_) return;
  const sim::Time now = env_.now();
  for (std::size_t i = 1; i < column_.size(); ++i) {
    const double gap =
        mobility::distance(column_[i - 1]->position_at(now), column_[i]->position_at(now));
    if (gap < min_observed_gap_) min_observed_gap_ = gap;
    if (gap <= min_gap_) {
      collided_ = true;
      collision_time_ = now;
      follower_ = i;
      return;  // stop sampling: the episode is decided
    }
  }
  timer_.schedule_in(interval_);
}

}  // namespace eblnet::core
