#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace eblnet::core {

/// Minimal streaming JSON emitter for the run manifests: handles commas,
/// two-space indentation, string escaping and non-finite doubles (emitted
/// as null) so every bench writes structurally valid JSON without a
/// third-party dependency. Usage is push-style:
///
///   JsonWriter w{os};
///   w.begin_object();
///   w.field("schema_version", std::uint64_t{1});
///   w.key("delay"); w.begin_object(); ... w.end_object();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_{os} {}

  void begin_object() {
    prefix();
    os_ << '{';
    stack_.push_back(0);
  }
  void end_object() {
    const bool had_members = stack_.back() > 0;
    stack_.pop_back();
    if (had_members) newline_indent();
    os_ << '}';
  }
  void begin_array() {
    prefix();
    os_ << '[';
    stack_.push_back(0);
  }
  void end_array() {
    const bool had_members = stack_.back() > 0;
    stack_.pop_back();
    if (had_members) newline_indent();
    os_ << ']';
  }

  void key(std::string_view k) {
    separate();
    write_string(k);
    os_ << ": ";
    pending_value_ = true;
  }

  void value(std::string_view v) {
    prefix();
    write_string(v);
  }
  void value(const char* v) { value(std::string_view{v}); }
  void value(bool v) {
    prefix();
    os_ << (v ? "true" : "false");
  }
  void value(std::uint64_t v) {
    prefix();
    os_ << v;
  }
  void value(std::int64_t v) {
    prefix();
    os_ << v;
  }
  void value(double v) {
    prefix();
    if (!std::isfinite(v)) {
      os_ << "null";
      return;
    }
    // Shortest-round-trip is overkill; 17 significant digits round-trips
    // any double and keeps the emitter locale-independent via the stream's
    // default C locale.
    const auto old_precision = os_.precision(17);
    os_ << v;
    os_.precision(old_precision);
  }

  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  /// Comma/indent bookkeeping before any value or key in a container.
  void separate() {
    if (stack_.empty()) return;
    if (stack_.back() > 0) os_ << ',';
    ++stack_.back();
    newline_indent();
  }

  /// A value either follows a key (no separator) or is an array element.
  void prefix() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    separate();
  }

  void newline_indent() {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            os_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<std::uint32_t> stack_;  ///< member count per open container
  bool pending_value_{false};
};

}  // namespace eblnet::core
