#pragma once

#include <functional>

#include "mobility/vehicle.hpp"
#include "net/env.hpp"
#include "sim/timer.hpp"
#include "transport/tcp_sink.hpp"

namespace eblnet::core {

/// Closes the control loop the paper only analyses on paper: when the
/// first EBL message reaches a follower, the follower's (automated)
/// braking system actually brakes its vehicle after a fixed actuation
/// delay. Combined with CollisionMonitor this turns the §III.E
/// stopping-distance argument into an executable experiment.
class EblBrakeReactor {
 public:
  /// Reacts to brake messages arriving at `sink` by braking `vehicle` at
  /// `decel` after `reaction` (perception/actuation latency).
  EblBrakeReactor(net::Env& env, transport::TcpSink& sink,
                  std::shared_ptr<mobility::Vehicle> vehicle, double decel,
                  sim::Time reaction);

  bool triggered() const noexcept { return triggered_; }
  /// When the first brake message arrived (valid once triggered).
  sim::Time notified_at() const noexcept { return notified_at_; }
  /// When the brakes actually engaged (valid once the timer fired).
  sim::Time braked_at() const noexcept { return braked_at_; }

  /// Re-arm for a new braking episode (e.g. after the platoon resumes).
  void reset();

 private:
  void on_message();

  net::Env& env_;
  std::shared_ptr<mobility::Vehicle> vehicle_;
  double decel_;
  sim::Time reaction_;
  bool triggered_{false};
  sim::Time notified_at_{};
  sim::Time braked_at_{};
  sim::Timer actuate_timer_;
};

/// Watches an ordered column of vehicles and reports the first time any
/// follower's position passes within `min_gap` of its predecessor —
/// i.e. a (near-)collision. Closed-form kinematics make exact checking
/// cheap: the monitor samples at a fixed interval much smaller than any
/// braking time constant.
class CollisionMonitor {
 public:
  CollisionMonitor(net::Env& env, std::vector<std::shared_ptr<mobility::Vehicle>> column,
                   double min_gap, sim::Time sample_interval = sim::Time::milliseconds(10));

  void start();
  void stop();

  bool collided() const noexcept { return collided_; }
  sim::Time collision_time() const noexcept { return collision_time_; }
  /// Index of the trailing vehicle in the offending pair (valid if collided).
  std::size_t collision_follower() const noexcept { return follower_; }
  /// Smallest gap observed so far between any adjacent pair (metres).
  double min_observed_gap() const noexcept { return min_observed_gap_; }

 private:
  void sample();

  net::Env& env_;
  std::vector<std::shared_ptr<mobility::Vehicle>> column_;
  double min_gap_;
  sim::Time interval_;
  bool running_{false};
  bool collided_{false};
  sim::Time collision_time_{};
  std::size_t follower_{0};
  double min_observed_gap_{1e300};
  sim::Timer timer_;
};

}  // namespace eblnet::core
