#pragma once

#include <functional>

#include "mobility/vehicle.hpp"
#include "net/env.hpp"
#include "sim/timer.hpp"
#include "transport/tcp_sink.hpp"

namespace eblnet::core {

/// Per-vehicle driving-policy hook: closes the control loop the paper
/// only analyses on paper. When the first warning reaches this vehicle
/// (via a TCP sink's data callback, or any other source calling
/// `notify()`), an arbitrary driving-policy action runs after a fixed
/// perception/actuation latency. The original use — brake one scripted
/// `mobility::Vehicle` — is the legacy constructor; closed-loop traffic
/// instead installs an IDM policy override (`TrafficFlow::apply_policy`)
/// so EBL reception feeds the car-following target gap/decel directly.
/// Combined with CollisionMonitor this turns the §III.E
/// stopping-distance argument into an executable experiment.
class EblBrakeReactor {
 public:
  /// Free-standing hook: the caller wires `notify()` to its own warning
  /// source (e.g. a WarningFlood reception callback); `policy` runs once
  /// per episode, `reaction` after the first notification.
  EblBrakeReactor(net::Env& env, std::function<void()> policy, sim::Time reaction);

  /// Hook driven by brake messages arriving at `sink`.
  EblBrakeReactor(net::Env& env, transport::TcpSink& sink, std::function<void()> policy,
                  sim::Time reaction);

  /// Legacy form: reacts to brake messages arriving at `sink` by braking
  /// `vehicle` at `decel` after `reaction`.
  EblBrakeReactor(net::Env& env, transport::TcpSink& sink,
                  std::shared_ptr<mobility::Vehicle> vehicle, double decel,
                  sim::Time reaction);

  /// First-warning entry point. Idempotent per episode: only the first
  /// call after construction/reset() schedules the policy action.
  void notify();

  bool triggered() const noexcept { return triggered_; }
  /// When the first brake message arrived (valid once triggered).
  sim::Time notified_at() const noexcept { return notified_at_; }
  /// When the policy actually engaged (valid once the timer fired).
  sim::Time braked_at() const noexcept { return braked_at_; }

  /// Re-arm for a new braking episode (e.g. after the platoon resumes).
  void reset();

 private:
  net::Env& env_;
  std::function<void()> policy_;
  sim::Time reaction_;
  bool triggered_{false};
  sim::Time notified_at_{};
  sim::Time braked_at_{};
  sim::Timer actuate_timer_;
};

/// Watches an ordered column of vehicles and reports the first time any
/// follower's position passes within `min_gap` of its predecessor —
/// i.e. a (near-)collision. Closed-form kinematics make exact checking
/// cheap: the monitor samples at a fixed interval much smaller than any
/// braking time constant.
class CollisionMonitor {
 public:
  CollisionMonitor(net::Env& env, std::vector<std::shared_ptr<mobility::Vehicle>> column,
                   double min_gap, sim::Time sample_interval = sim::Time::milliseconds(10));

  void start();
  void stop();

  bool collided() const noexcept { return collided_; }
  sim::Time collision_time() const noexcept { return collision_time_; }
  /// Index of the trailing vehicle in the offending pair (valid if collided).
  std::size_t collision_follower() const noexcept { return follower_; }
  /// Smallest gap observed so far between any adjacent pair (metres).
  double min_observed_gap() const noexcept { return min_observed_gap_; }

 private:
  void sample();

  net::Env& env_;
  std::vector<std::shared_ptr<mobility::Vehicle>> column_;
  double min_gap_;
  sim::Time interval_;
  bool running_{false};
  bool collided_{false};
  sim::Time collision_time_{};
  std::size_t follower_{0};
  double min_observed_gap_{1e300};
  sim::Timer timer_;
};

}  // namespace eblnet::core
