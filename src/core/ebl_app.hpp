#pragma once

#include <memory>
#include <vector>

#include "app/traffic.hpp"
#include "mobility/platoon.hpp"
#include "net/node.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/tcp_sink.hpp"

namespace eblnet::core {

/// EBL traffic parameters.
struct EblConfig {
  /// Application payload per EBL message (the paper's variable parameter:
  /// 500 or 1000 bytes).
  std::size_t packet_bytes{1000};
  /// Offered CBR rate per follower link, bits/second. Calibrated so the
  /// two-link total (2.4 Mb/s) stays below 802.11's service capacity but
  /// far above TDMA's one-packet-per-frame service rate, which is what
  /// produces the paper's contrast between the two MACs.
  double cbr_rate_bps{1.2e6};
  /// TCP parameters for the EBL links (packet_size is overridden by
  /// `packet_bytes`). The calibrated 5-packet window bounds the standing
  /// queue when the MAC is the bottleneck: five packets in flight over a
  /// 64-slot TDMA frame yields the paper's ~1 s steady-state one-way
  /// delay. See bench/ablation_tcp_window for the delay-vs-window sweep.
  transport::TcpParams tcp = [] {
    transport::TcpParams p;
    p.max_window = 5.0;
    p.initial_ssthresh = 5.0;
    return p;
  }();
  /// Receiver-side options for the follower sinks (delayed ACKs etc.).
  transport::TcpSinkParams sink{};
};

/// One Extended-Brake-Lights stream: brake-status messages from the lead
/// vehicle to a single follower, carried as CBR over a TCP connection
/// (lead-side TcpSender, follower-side TcpSink).
class EblLink {
 public:
  EblLink(net::Env& env, net::Node& lead, net::Node& follower, net::Port lead_port,
          net::Port follower_port, const EblConfig& cfg);

  void start() { feeder_.start(); }
  void stop() {
    feeder_.stop();
    sender_.truncate_backlog();
  }
  bool running() const noexcept { return feeder_.running(); }

  const transport::TcpSink& sink() const noexcept { return sink_; }
  /// Mutable access for composition (e.g. attaching an EblBrakeReactor).
  transport::TcpSink& mutable_sink() noexcept { return sink_; }
  const transport::TcpSender& sender() const noexcept { return sender_; }
  net::NodeId follower_id() const noexcept { return follower_.id(); }

 private:
  net::Node& follower_;
  transport::TcpSender sender_;
  transport::TcpSink sink_;
  app::TcpCbrFeeder feeder_;
};

/// The Extended Brake Lights application for a whole platoon: the lead
/// vehicle streams brake-status messages to every follower, and — per the
/// paper's rule — "communication between the vehicles occurs only when
/// the vehicles are braking or stopped". The class subscribes to the lead
/// vehicle's drive state and starts/stops every link on the
/// cruising/braking boundary.
class PlatoonEbl {
 public:
  /// `nodes[i]` must be the network node of `platoon.vehicle(i)`.
  PlatoonEbl(net::Env& env, mobility::Platoon& platoon, const std::vector<net::Node*>& nodes,
             EblConfig cfg, net::Port base_port = 1000);

  bool communicating() const;

  /// Links in follower order: link(0) targets vehicle 1 (middle), etc.
  std::size_t link_count() const noexcept { return links_.size(); }
  const EblLink& link(std::size_t i) const { return *links_.at(i); }
  EblLink& mutable_link(std::size_t i) { return *links_.at(i); }

  /// Sum of every follower sink's byte counter — the quantity the
  /// platoon-level throughput monitor samples.
  std::uint64_t total_sink_bytes() const;

 private:
  void on_lead_state(mobility::DriveState s);

  std::vector<std::unique_ptr<EblLink>> links_;
};

}  // namespace eblnet::core
