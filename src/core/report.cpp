#include "core/report.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "core/json_writer.hpp"
#include "core/safety.hpp"
#include "core/trial.hpp"

namespace eblnet::core::report {

void print_header(const ReportContext& ctx, const std::string& title) {
  ctx.os << '\n' << std::string(72, '=') << '\n' << title << '\n' << std::string(72, '=') << '\n';
}

void print_delay_series(const ReportContext& ctx, const std::string& title,
                        const std::vector<trace::DelaySample>& samples, std::size_t max_points) {
  print_header(ctx, title);
  ctx.os << "packet_id  delay_s\n";
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (n++ >= max_points) break;
    ctx.os << std::setw(9) << s.seq << "  " << std::fixed << std::setprecision(ctx.precision)
           << s.delay_seconds() << '\n';
  }
  ctx.os << "(" << std::min(samples.size(), max_points) << " of " << samples.size()
         << " packets shown)\n";
}

void print_throughput_series(const ReportContext& ctx, const std::string& title,
                             const stats::TimeSeries& series) {
  print_header(ctx, title);
  ctx.os << "time_s  mbps\n";
  for (const auto& p : series.points()) {
    ctx.os << std::fixed << std::setprecision(1) << std::setw(6) << p.t.to_seconds() << "  "
           << std::setprecision(ctx.precision) << p.value << '\n';
  }
}

void print_summary_row(const ReportContext& ctx, const std::string& label,
                       const stats::Summary& s) {
  if (s.empty()) {
    ctx.os << std::left << std::setw(34) << label << " (no samples)\n";
    return;
  }
  ctx.os << std::left << std::setw(34) << label << std::right << std::fixed
         << std::setprecision(ctx.precision) << "  avg=" << s.mean() << ' ' << ctx.unit
         << "  min=" << s.min() << ' ' << ctx.unit << "  max=" << s.max() << ' ' << ctx.unit
         << "  n=" << s.count() << '\n';
}

void print_confidence(const ReportContext& ctx, const std::string& label,
                      const stats::ConfidenceInterval& ci) {
  ctx.os << label << ": the actual average is within " << std::fixed
         << std::setprecision(ctx.precision) << ci.half_width << ' ' << ctx.unit
         << " of the observed " << ci.mean << ' ' << ctx.unit << ", with " << std::setprecision(0)
         << ci.confidence * 100.0 << "% confidence and " << std::setprecision(1)
         << ci.relative_precision() * 100.0 << "% relative precision (" << ci.samples
         << " batch samples)\n";
}

// --- JSON run manifests ------------------------------------------------

namespace {

void write_summary(JsonWriter& w, const stats::Summary& s) {
  w.begin_object();
  w.field("count", s.count());
  w.field("mean", s.mean());
  w.field("min", s.empty() ? 0.0 : s.min());
  w.field("max", s.empty() ? 0.0 : s.max());
  w.end_object();
}

void write_confidence(JsonWriter& w, const stats::ConfidenceInterval& ci) {
  w.begin_object();
  w.field("mean", ci.mean);
  w.field("half_width", ci.half_width);
  w.field("confidence", ci.confidence);
  w.field("relative_precision", ci.relative_precision());
  w.field("samples", ci.samples);
  w.end_object();
}

void write_gauge(JsonWriter& w, const sim::GaugeStat& g) {
  w.begin_object();
  w.field("count", g.count);
  w.field("mean", g.mean());
  w.field("min", g.min);
  w.field("max", g.max);
  w.end_object();
}

void write_metrics(JsonWriter& w, const sim::MetricsSnapshot& m) {
  w.begin_object();
  w.field("enabled", m.enabled);
  w.field("nodes", static_cast<std::uint64_t>(m.nodes));
  w.key("per_layer");
  w.begin_object();
  // Counters are declared grouped by layer, so a sequential scan emits
  // each layer's object exactly once.
  const char* open_layer = nullptr;
  for (std::size_t i = 0; i < sim::kCounterCount; ++i) {
    const auto c = static_cast<sim::Counter>(i);
    const char* layer = sim::counter_layer(c);
    if (open_layer == nullptr || std::string_view{open_layer} != layer) {
      if (open_layer != nullptr) w.end_object();
      w.key(layer);
      w.begin_object();
      open_layer = layer;
    }
    w.field(sim::counter_name(c), m.total(c));
  }
  if (open_layer != nullptr) w.end_object();
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (std::size_t i = 0; i < sim::kGaugeCount; ++i) {
    const auto g = static_cast<sim::Gauge>(i);
    w.key(sim::gauge_name(g));
    write_gauge(w, m.gauge(g));
  }
  w.end_object();
  w.end_object();
}

void write_config(JsonWriter& w, const ScenarioConfig& cfg) {
  w.begin_object();
  w.field("packet_bytes", static_cast<std::uint64_t>(cfg.packet_bytes));
  w.field("mac", to_string(cfg.mac));
  w.field("routing", to_string(cfg.routing));
  w.field("propagation", to_string(cfg.propagation));
  w.field("use_arp", cfg.use_arp);
  w.field("use_red_queue", cfg.use_red_queue);
  w.field("platoon_size", static_cast<std::uint64_t>(cfg.platoon_size));
  w.field("speed_mps", cfg.speed_mps);
  w.field("vehicle_gap_m", cfg.vehicle_gap_m);
  w.field("decel_mps2", cfg.decel_mps2);
  w.field("ifq_capacity", static_cast<std::uint64_t>(cfg.ifq_capacity));
  w.field("duration_s", cfg.duration.to_seconds());
  w.field("seed", cfg.seed);
  w.field("metrics_enabled", cfg.enable_metrics);
  w.key("reactive");
  w.begin_object();
  w.field("enabled", cfg.reactive.enabled);
  w.field("decel_mps2", cfg.reactive.decel_mps2);
  w.field("reaction_s", cfg.reactive.reaction.to_seconds());
  w.end_object();
  w.key("beacon");
  w.begin_object();
  w.field("enabled", cfg.beacon.enabled);
  w.field("interval_s", cfg.beacon.interval.to_seconds());
  w.field("payload_bytes", static_cast<std::uint64_t>(cfg.beacon.payload_bytes));
  w.field("priority", static_cast<std::uint64_t>(cfg.beacon.priority));
  w.end_object();
  w.key("blockage");
  w.begin_object();
  w.field("enabled", cfg.blockage.enabled);
  w.field("half_width_m", cfg.blockage.half_width_m);
  w.field("corner_loss_db", cfg.blockage.corner_loss_db);
  w.end_object();
  w.field("nakagami_node_streams", cfg.nakagami_node_streams);
  if (cfg.mac == MacType::kEdca) {
    // The chosen MAC's contention table only (like the scenario key).
    w.key("edca");
    w.begin_object();
    w.field("data_rate_bps", cfg.edca.data_rate_bps);
    w.field("slot_time_us", cfg.edca.slot_time.to_seconds() * 1e6);
    w.field("sifs_us", cfg.edca.sifs.to_seconds() * 1e6);
    w.key("ac");
    w.begin_array();
    for (std::size_t i = 0; i < mac::kAccessCategoryCount; ++i) {
      w.begin_object();
      w.field("name", mac::to_string(static_cast<mac::AccessCategory>(i)));
      w.field("aifsn", static_cast<std::uint64_t>(cfg.edca.ac[i].aifsn));
      w.field("cw_min", static_cast<std::uint64_t>(cfg.edca.ac[i].cw_min));
      w.field("cw_max", static_cast<std::uint64_t>(cfg.edca.ac[i].cw_max));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.key("faults");
  w.begin_object();
  w.field("enabled", !cfg.faults.empty());
  w.field("event_count", static_cast<std::uint64_t>(cfg.faults.events.size()));
  w.field("rng_seed", cfg.faults.rng_seed);
  w.end_object();
  w.end_object();
}

void write_resilience(JsonWriter& w, const TrialResult::Resilience& rz) {
  w.begin_object();
  w.field("faults_enabled", rz.faults_enabled);
  w.field("time_to_reroute_s", rz.time_to_reroute_s);
  w.field("delivery_ratio", rz.delivery_ratio);
  w.field("delivery_ratio_during_outage", rz.delivery_ratio_during_outage);
  w.field("delivery_ratio_after_outage", rz.delivery_ratio_after_outage);
  w.field("outage_start_s", rz.outage_start_s);
  w.field("outage_end_s", rz.outage_end_s);
  w.field("crashes", rz.crashes);
  w.field("injected_drops", rz.injected_drops);
  w.field("jam_bursts", rz.jam_bursts);
  w.end_object();
}

void write_trial_object(JsonWriter& w, const TrialResult& r) {
  w.begin_object();
  w.field("schema_version", static_cast<std::int64_t>(kManifestSchemaVersion));
  w.field("kind", "eblnet.trial");
  w.field("name", r.name);
  w.key("config");
  write_config(w, r.config);
  w.field("events_executed", r.events_executed);

  w.key("delay");
  w.begin_object();
  w.key("p1");
  write_summary(w, r.p1_delay_summary());
  w.key("p2");
  write_summary(w, r.p2_delay_summary());
  w.field("p1_initial_packet_delay_s", r.p1_initial_packet_delay_s);
  w.field("p1_steady_state_delay_s", r.p1_steady_state_delay_s());
  w.end_object();

  w.key("throughput");
  w.begin_object();
  w.key("p1");
  write_summary(w, r.p1_throughput_summary());
  w.key("p1_ci");
  write_confidence(w, r.p1_throughput_ci);
  w.key("p2");
  write_summary(w, r.p2_throughput_summary());
  w.key("p2_ci");
  write_confidence(w, r.p2_throughput_ci);
  w.end_object();

  {
    // The §III.E feasibility verdict for the latest-notified follower,
    // with zero driver-reaction time (the network-only bound).
    const bool have_delay = r.p1_initial_packet_delay_s >= 0.0;
    const StoppingAssessment a{r.config.speed_mps, r.config.vehicle_gap_m,
                               have_delay ? r.p1_initial_packet_delay_s : 0.0};
    w.key("stopping_distance");
    w.begin_object();
    w.field("speed_mps", a.speed_mps);
    w.field("headway_m", a.headway_m);
    w.field("notification_delay_s", a.notification_delay_s);
    w.field("distance_during_notification_m", a.distance_during_notification());
    w.field("fraction_of_headway", a.fraction_of_headway());
    w.field("margin_m", a.margin(0.0));
    w.field("verdict", !have_delay       ? "no_data"
                       : a.collision_avoided(0.0) ? "avoided"
                                                  : "collision");
    w.end_object();
  }

  w.key("trace_counters");
  w.begin_object();
  w.field("ifq_drops", r.ifq_drops);
  w.field("phy_collisions", r.phy_collisions);
  w.field("mac_retry_drops", r.mac_retry_drops);
  w.field("routing_control_sends", r.routing_control_sends);
  w.field("data_frame_sends", r.data_frame_sends);
  w.end_object();

  w.key("resilience");
  write_resilience(w, r.resilience);

  w.key("metrics");
  write_metrics(w, r.metrics);
  w.end_object();
}

void write_resilience_cell(JsonWriter& w, const ResilienceCell& cell) {
  const TrialResult& r = cell.result;
  w.begin_object();
  w.field("label", cell.label);
  w.field("axis", cell.axis);
  w.field("value", cell.value);
  w.field("name", r.name);
  w.field("events_executed", r.events_executed);

  w.key("resilience");
  write_resilience(w, r.resilience);

  const bool have_delay = r.p1_initial_packet_delay_s >= 0.0;
  const bool have_baseline = cell.baseline_initial_delay_s >= 0.0;
  w.field("p1_initial_packet_delay_s", r.p1_initial_packet_delay_s);
  w.field("baseline_initial_delay_s", cell.baseline_initial_delay_s);
  // Inflation of the safety-critical first-packet delay over the
  // fault-free baseline; 0 when either side is missing (the verdict
  // below carries the "never notified" case).
  w.field("delay_inflation_s", have_delay && have_baseline
                                   ? r.p1_initial_packet_delay_s - cell.baseline_initial_delay_s
                                   : 0.0);

  {
    // §III.E stopping-distance feasibility, evaluated under the fault. A
    // follower that never hears the brake notification at all is its own
    // verdict — worse than any finite delay.
    const StoppingAssessment a{r.config.speed_mps, r.config.vehicle_gap_m,
                               have_delay ? r.p1_initial_packet_delay_s : 0.0};
    w.key("stopping_distance");
    w.begin_object();
    w.field("speed_mps", a.speed_mps);
    w.field("headway_m", a.headway_m);
    w.field("notification_delay_s", a.notification_delay_s);
    w.field("distance_during_notification_m", a.distance_during_notification());
    w.field("fraction_of_headway", a.fraction_of_headway());
    w.field("margin_m", a.margin(0.0));
    w.field("verdict", !have_delay               ? "never_notified"
                       : a.collision_avoided(0.0) ? "avoided"
                                                  : "collision");
    w.end_object();
  }
  w.end_object();
}

}  // namespace

void write_json(std::ostream& os, const TrialResult& r) {
  JsonWriter w{os};
  write_trial_object(w, r);
  os << '\n';
}

void write_trial_json(JsonWriter& w, const TrialResult& r) { write_trial_object(w, r); }

void write_metrics_json(JsonWriter& w, const sim::MetricsSnapshot& m) { write_metrics(w, m); }

void write_sweep_json(std::ostream& os, const std::string& name,
                      std::span<const TrialResult> results) {
  JsonWriter w{os};
  w.begin_object();
  w.field("schema_version", static_cast<std::int64_t>(kManifestSchemaVersion));
  w.field("kind", "eblnet.sweep");
  w.field("name", name);
  w.field("trial_count", static_cast<std::uint64_t>(results.size()));
  w.key("trials");
  w.begin_array();
  for (const auto& r : results) write_trial_object(w, r);
  w.end_array();

  std::uint64_t events = 0;
  sim::MetricsSnapshot merged;
  for (const auto& r : results) {
    events += r.events_executed;
    merged.merge(r.metrics);
  }
  w.key("aggregate");
  w.begin_object();
  w.field("events_executed", events);
  w.key("metrics");
  write_metrics(w, merged);
  w.end_object();
  w.end_object();
  os << '\n';
}

void write_resilience_json(std::ostream& os, const std::string& name,
                           std::span<const TrialResult> baselines,
                           std::span<const ResilienceCell> cells) {
  JsonWriter w{os};
  w.begin_object();
  w.field("schema_version", static_cast<std::int64_t>(kManifestSchemaVersion));
  w.field("kind", "eblnet.resilience");
  w.field("name", name);
  w.field("baseline_count", static_cast<std::uint64_t>(baselines.size()));
  w.key("baselines");
  w.begin_array();
  for (const auto& r : baselines) write_trial_object(w, r);
  w.end_array();
  w.field("cell_count", static_cast<std::uint64_t>(cells.size()));
  w.key("cells");
  w.begin_array();
  for (const auto& c : cells) write_resilience_cell(w, c);
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_traffic_json(std::ostream& os, const std::string& name, const TrafficConfig& cfg,
                        std::span<const TrafficRunResult> cells) {
  JsonWriter w{os};
  w.begin_object();
  w.field("schema_version", static_cast<std::int64_t>(kManifestSchemaVersion));
  w.field("kind", "eblnet.traffic");
  w.field("name", name);

  w.key("config");
  w.begin_object();
  std::uint64_t lanes_total = 0;
  for (const auto& r : cfg.flow.roads) lanes_total += static_cast<std::uint64_t>(r.lanes);
  w.field("roads", static_cast<std::uint64_t>(cfg.flow.roads.size()));
  w.field("lanes_total", lanes_total);
  w.field("road_length_m", cfg.flow.roads.empty() ? 0.0 : cfg.flow.roads.front().length_m);
  w.field("flow_rate_veh_per_s_per_lane", cfg.flow.flow_rate_veh_per_s_per_lane);
  w.field("max_vehicles", static_cast<std::uint64_t>(cfg.flow.max_vehicles));
  w.field("desired_speed_mps", cfg.flow.idm.desired_speed_mps);
  w.field("time_headway_s", cfg.flow.idm.time_headway_s);
  w.field("tick_s", cfg.flow.tick.to_seconds());
  w.field("warn_range_m", cfg.warn_range_m);
  w.field("reaction_s", cfg.reaction.to_seconds());
  w.field("policy_headway_scale", cfg.warned_policy.headway_scale);
  w.field("policy_speed_cap_mps", cfg.warned_policy.speed_cap_mps);
  w.field("incident_at_s", cfg.incident_at.to_seconds());
  w.field("incident_decel_mps2", cfg.incident_decel_mps2);
  w.field("congestion_speed_mps", cfg.congestion_speed_mps);
  w.field("duration_s", cfg.duration.to_seconds());
  w.field("seed", cfg.seed);
  w.end_object();

  w.field("cell_count", static_cast<std::uint64_t>(cells.size()));
  w.key("cells");
  w.begin_array();
  for (const auto& c : cells) {
    w.begin_object();
    w.field("name", c.name);
    w.field("penetration", c.penetration);
    w.field("vehicles_spawned", c.vehicles_spawned);
    w.field("equipped", c.equipped);
    w.field("warnings_originated", c.warnings_originated);
    w.field("warning_receptions", c.warning_receptions);
    w.field("reactions", c.reactions);
    w.field("shockwave_speed_mps", c.shockwave_speed_mps);
    w.field("shockwave_points", c.shockwave_points);
    w.field("congestion_onset_s", c.congestion_onset_s);
    w.field("slowed_vehicles", c.slowed_vehicles);
    w.field("final_mean_speed_mps", c.final_mean_speed_mps);
    w.field("events_executed", c.events_executed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f{path};
  if (!f) throw std::runtime_error{"report: cannot open " + path + " for writing"};
  return f;
}

}  // namespace

void write_json_file(const std::string& path, const TrialResult& r) {
  auto f = open_or_throw(path);
  write_json(f, r);
  if (!f) throw std::runtime_error{"report: write failed for " + path};
}

void write_sweep_json_file(const std::string& path, const std::string& name,
                           std::span<const TrialResult> results) {
  auto f = open_or_throw(path);
  write_sweep_json(f, name, results);
  if (!f) throw std::runtime_error{"report: write failed for " + path};
}

void write_resilience_json_file(const std::string& path, const std::string& name,
                                std::span<const TrialResult> baselines,
                                std::span<const ResilienceCell> cells) {
  auto f = open_or_throw(path);
  write_resilience_json(f, name, baselines, cells);
  if (!f) throw std::runtime_error{"report: write failed for " + path};
}

void write_traffic_json_file(const std::string& path, const std::string& name,
                             const TrafficConfig& cfg, std::span<const TrafficRunResult> cells) {
  auto f = open_or_throw(path);
  write_traffic_json(f, name, cfg, cells);
  if (!f) throw std::runtime_error{"report: write failed for " + path};
}

}  // namespace eblnet::core::report
