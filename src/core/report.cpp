#include "core/report.hpp"

#include <iomanip>
#include <ostream>

namespace eblnet::core::report {

void print_header(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n' << title << '\n' << std::string(72, '=') << '\n';
}

void print_delay_series(std::ostream& os, const std::string& title,
                        const std::vector<trace::DelaySample>& samples, std::size_t max_points) {
  print_header(os, title);
  os << "packet_id  delay_s\n";
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (n++ >= max_points) break;
    os << std::setw(9) << s.seq << "  " << std::fixed << std::setprecision(6)
       << s.delay_seconds() << '\n';
  }
  os << "(" << std::min(samples.size(), max_points) << " of " << samples.size()
     << " packets shown)\n";
}

void print_throughput_series(std::ostream& os, const std::string& title,
                             const stats::TimeSeries& series) {
  print_header(os, title);
  os << "time_s  mbps\n";
  for (const auto& p : series.points()) {
    os << std::fixed << std::setprecision(1) << std::setw(6) << p.t.to_seconds() << "  "
       << std::setprecision(4) << p.value << '\n';
  }
}

void print_summary_row(std::ostream& os, const std::string& label, const stats::Summary& s,
                       const std::string& unit) {
  if (s.empty()) {
    os << std::left << std::setw(34) << label << " (no samples)\n";
    return;
  }
  os << std::left << std::setw(34) << label << std::right << std::fixed << std::setprecision(4)
     << "  avg=" << s.mean() << ' ' << unit << "  min=" << s.min() << ' ' << unit
     << "  max=" << s.max() << ' ' << unit << "  n=" << s.count() << '\n';
}

void print_confidence(std::ostream& os, const std::string& label,
                      const stats::ConfidenceInterval& ci, const std::string& unit) {
  os << label << ": the actual average is within " << std::fixed << std::setprecision(4)
     << ci.half_width << ' ' << unit << " of the observed " << ci.mean << ' ' << unit << ", with "
     << std::setprecision(0) << ci.confidence * 100.0 << "% confidence and "
     << std::setprecision(1) << ci.relative_precision() * 100.0 << "% relative precision ("
     << ci.samples << " batch samples)\n";
}

}  // namespace eblnet::core::report
