#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/scenario.hpp"
#include "core/trial.hpp"

namespace eblnet::core {

/// Fluent front door for configuring and running the intersection
/// scenario — the single public entry point examples and benches go
/// through. Every setter returns *this, so a whole experiment reads as
/// one expression:
///
///   const core::TrialResult r = core::ScenarioBuilder::trial1()
///                                   .seed(7)
///                                   .metrics()
///                                   .run("trial1/seed7");
///
/// Start from a preset (trial1/2/3, the paper's calibrated trials), from
/// a (packet size, MAC) point, or from scratch; fields without a named
/// setter are reachable through mutate().
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  explicit ScenarioBuilder(ScenarioConfig config) : config_{std::move(config)} {}

  // --- presets ---
  /// The paper's trials: 1000 B/TDMA, 500 B/TDMA, 1000 B/802.11.
  static ScenarioBuilder trial1() { return ScenarioBuilder{trial1_config()}; }
  static ScenarioBuilder trial2() { return ScenarioBuilder{trial2_config()}; }
  static ScenarioBuilder trial3() { return ScenarioBuilder{trial3_config()}; }
  /// An arbitrary grid point sharing the trials' calibrated parameters.
  static ScenarioBuilder trial(std::size_t packet_bytes, MacType mac) {
    return ScenarioBuilder{make_trial_config(packet_bytes, mac)};
  }

  // --- the paper's variable parameters ---
  ScenarioBuilder& mac(MacType m) {
    config_.mac = m;
    return *this;
  }
  ScenarioBuilder& packet_bytes(std::size_t bytes) {
    config_.packet_bytes = bytes;
    return *this;
  }

  // --- baselines / ablations ---
  ScenarioBuilder& routing(RoutingType r) {
    config_.routing = r;
    return *this;
  }
  ScenarioBuilder& arp(bool on = true) {
    config_.use_arp = on;
    return *this;
  }
  ScenarioBuilder& red_queue(bool on = true) {
    config_.use_red_queue = on;
    return *this;
  }
  ScenarioBuilder& red_queue(const queue::RedParams& params) {
    config_.use_red_queue = true;
    config_.red = params;
    return *this;
  }

  // --- run shape ---
  ScenarioBuilder& platoon_size(std::size_t n) {
    config_.platoon_size = n;
    return *this;
  }
  ScenarioBuilder& duration(sim::Time t) {
    config_.duration = t;
    return *this;
  }
  ScenarioBuilder& seed(std::uint64_t s) {
    config_.seed = s;
    return *this;
  }

  // --- channel / phy ---
  /// Broadcast-delivery tuning (spatial-grid threshold, re-bucket bounds).
  ScenarioBuilder& channel_params(const phy::ChannelParams& p) {
    config_.channel = p;
    return *this;
  }

  // --- fault injection ---
  /// Install a deterministic fault schedule (node crashes, RF blackouts,
  /// packet-error rates, clock skew, queue chaos, jamming). The default
  /// empty plan leaves the run bit-identical to a fault-free binary.
  ScenarioBuilder& with_faults(sim::FaultPlan plan) {
    config_.faults = std::move(plan);
    return *this;
  }

  // --- observability ---
  /// Enable the per-layer metrics registry (JSON manifests need this).
  ScenarioBuilder& metrics(bool on = true) {
    config_.enable_metrics = on;
    return *this;
  }
  ScenarioBuilder& trace(bool on = true) {
    config_.enable_trace = on;
    return *this;
  }

  /// Escape hatch for fields without a named setter.
  ScenarioBuilder& mutate(const std::function<void(ScenarioConfig&)>& fn) {
    fn(config_);
    return *this;
  }

  // --- terminal operations ---
  const ScenarioConfig& config() const noexcept { return config_; }
  ScenarioConfig build() const { return config_; }

  /// Construct the scenario without running it (step it manually with
  /// run_until, attach reactors, ...).
  std::unique_ptr<EblScenario> build_scenario() const {
    return std::make_unique<EblScenario>(config_);
  }

  /// Run to completion and extract the TrialResult (see core::run_trial).
  TrialResult run(std::string name = {},
                  const std::function<void(EblScenario&)>& after_run = {}) const {
    return run_trial(config_, std::move(name), after_run);
  }

 private:
  ScenarioConfig config_;
};

}  // namespace eblnet::core
