#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/scenario.hpp"
#include "core/sharded_scenario.hpp"
#include "core/traffic_scenario.hpp"
#include "core/trial.hpp"

namespace eblnet::core {

/// Fluent front door for configuring and running the intersection
/// scenario — the single public entry point examples and benches go
/// through. Every setter returns *this, so a whole experiment reads as
/// one expression:
///
///   const core::TrialResult r = core::ScenarioBuilder::trial1()
///                                   .seed(7)
///                                   .metrics()
///                                   .run("trial1/seed7");
///
/// Start from a preset (trial1/2/3, the paper's calibrated trials), from
/// a (packet size, MAC) point, or from scratch; fields without a named
/// setter are reachable through mutate().
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  explicit ScenarioBuilder(ScenarioConfig config) : config_{std::move(config)} {}

  // --- presets ---
  /// The paper's trials: 1000 B/TDMA, 500 B/TDMA, 1000 B/802.11.
  static ScenarioBuilder trial1() { return ScenarioBuilder{trial1_config()}; }
  static ScenarioBuilder trial2() { return ScenarioBuilder{trial2_config()}; }
  static ScenarioBuilder trial3() { return ScenarioBuilder{trial3_config()}; }
  /// An arbitrary grid point sharing the trials' calibrated parameters.
  static ScenarioBuilder trial(std::size_t packet_bytes, MacType mac) {
    return ScenarioBuilder{make_trial_config(packet_bytes, mac)};
  }

  // --- the paper's variable parameters ---
  ScenarioBuilder& mac(MacType m) {
    config_.mac = m;
    return *this;
  }
  ScenarioBuilder& packet_bytes(std::size_t bytes) {
    config_.packet_bytes = bytes;
    return *this;
  }

  // --- baselines / ablations ---
  ScenarioBuilder& routing(RoutingType r) {
    config_.routing = r;
    return *this;
  }
  ScenarioBuilder& arp(bool on = true) {
    config_.use_arp = on;
    return *this;
  }
  ScenarioBuilder& red_queue(bool on = true) {
    config_.use_red_queue = on;
    return *this;
  }
  ScenarioBuilder& red_queue(const queue::RedParams& params) {
    config_.use_red_queue = true;
    config_.red = params;
    return *this;
  }

  // --- run shape ---
  ScenarioBuilder& platoon_size(std::size_t n) {
    config_.platoon_size = n;
    return *this;
  }
  ScenarioBuilder& duration(sim::Time t) {
    config_.duration = t;
    return *this;
  }
  ScenarioBuilder& seed(std::uint64_t s) {
    config_.seed = s;
    return *this;
  }

  /// Execute the run space-sharded over `k` conservative shards (see
  /// core::run_sharded_trial and DESIGN.md §3.9). k = 1 (the default) is
  /// the serial engine, bit-identical to a build without this knob; k > 1
  /// forces per-node RNG streams and rejects fault plans, reactive
  /// braking and Nakagami fading. Sharded-run engine diagnostics land in
  /// `diag` when provided.
  ScenarioBuilder& with_shards(std::size_t k, ShardRunDiagnostics* diag = nullptr) {
    shards_ = k;
    shard_diag_ = diag;
    return *this;
  }
  std::size_t shards() const noexcept { return shards_; }

  // --- channel / phy ---
  /// Broadcast-delivery tuning (spatial-grid threshold, re-bucket bounds).
  ScenarioBuilder& channel_params(const phy::ChannelParams& p) {
    config_.channel = p;
    return *this;
  }
  /// Channel model selection; `m` is the Nakagami shape (ignored by
  /// two-ray).
  ScenarioBuilder& propagation(PropagationType p, double m = 3.0) {
    config_.propagation = p;
    config_.nakagami_m = m;
    return *this;
  }
  /// Keyed per-pair Nakagami fade streams — fades become a pure function
  /// of (seed, tx, rx, transmit time), which is what lets with_shards(k)
  /// run Nakagami scenarios bit-identically to the serial oracle.
  ScenarioBuilder& nakagami_node_streams(bool on = true) {
    config_.nakagami_node_streams = on;
    return *this;
  }
  /// Wrap the propagation model in corner-building NLOS blockage centred
  /// on the intersection (phy::IntersectionBlockage).
  ScenarioBuilder& with_intersection_blockage(double half_width_m = 10.0,
                                              double corner_loss_db = 10.0) {
    config_.blockage.enabled = true;
    config_.blockage.half_width_m = half_width_m;
    config_.blockage.corner_loss_db = corner_loss_db;
    return *this;
  }

  // --- V2X beaconing ---
  /// Select the 802.11p EDCA MAC (four access categories, broadcast
  /// frames never ACKed/retried).
  ScenarioBuilder& with_edca(const mac::EdcaParams& params = {}) {
    config_.mac = MacType::kEdca;
    config_.edca = params;
    return *this;
  }
  /// Start a periodic CAM/BSM broadcast beacon app on every node.
  ScenarioBuilder& with_beacons(sim::Time interval = sim::Time::milliseconds(100),
                                std::size_t payload_bytes = 200, std::uint8_t priority = 5) {
    config_.beacon.enabled = true;
    config_.beacon.interval = interval;
    config_.beacon.payload_bytes = payload_bytes;
    config_.beacon.priority = priority;
    return *this;
  }
  ScenarioBuilder& with_beacons(const BeaconConfig& cfg) {
    config_.beacon = cfg;
    config_.beacon.enabled = true;
    return *this;
  }

  // --- closed-loop driving ---
  /// Close the loop: platoon 1's followers brake only when their first
  /// EBL message arrives (EblBrakeReactor per follower + a
  /// CollisionMonitor on the column), instead of the scripted all-stop.
  ScenarioBuilder& with_reactive_braking(double decel_mps2 = 6.0,
                                         sim::Time reaction = sim::Time::milliseconds(100)) {
    config_.reactive.enabled = true;
    config_.reactive.decel_mps2 = decel_mps2;
    config_.reactive.reaction = reaction;
    return *this;
  }
  ScenarioBuilder& with_reactive_braking(const ReactiveBrakingConfig& cfg) {
    config_.reactive = cfg;
    config_.reactive.enabled = true;
    return *this;
  }

  /// Replace the scripted intersection with closed-loop car-following
  /// traffic (mobility::TrafficFlow + V2V warning flooding for the
  /// equipped fraction). Terminal operation is run_traffic(); the
  /// scripted terminals (run/build_scenario) refuse a traffic config so
  /// the two scenario families cannot be silently mixed. The traffic
  /// run inherits the builder's seed unless the config sets its own.
  ScenarioBuilder& with_traffic_flow(TrafficConfig cfg) {
    traffic_ = std::move(cfg);
    traffic_.enabled = true;
    return *this;
  }
  const TrafficConfig& traffic_config() const noexcept { return traffic_; }

  // --- fault injection ---
  /// Install a deterministic fault schedule (node crashes, RF blackouts,
  /// packet-error rates, clock skew, queue chaos, jamming). The default
  /// empty plan leaves the run bit-identical to a fault-free binary.
  ScenarioBuilder& with_faults(sim::FaultPlan plan) {
    config_.faults = std::move(plan);
    return *this;
  }

  // --- observability ---
  /// Enable the per-layer metrics registry (JSON manifests need this).
  ScenarioBuilder& metrics(bool on = true) {
    config_.enable_metrics = on;
    return *this;
  }
  ScenarioBuilder& trace(bool on = true) {
    config_.enable_trace = on;
    return *this;
  }

  /// Escape hatch for fields without a named setter.
  ScenarioBuilder& mutate(const std::function<void(ScenarioConfig&)>& fn) {
    fn(config_);
    return *this;
  }

  // --- terminal operations ---
  const ScenarioConfig& config() const noexcept { return config_; }
  ScenarioConfig build() const { return config_; }

  /// Construct the scenario without running it (step it manually with
  /// run_until, attach reactors, ...).
  std::unique_ptr<EblScenario> build_scenario() const {
    reject_traffic("build_scenario");
    return std::make_unique<EblScenario>(config_);
  }

  /// Run to completion and extract the TrialResult (see core::run_trial).
  /// With with_shards(k > 1) the run executes on the sharded engine
  /// (after_run is unsupported there: no single EblScenario exists).
  TrialResult run(std::string name = {},
                  const std::function<void(EblScenario&)>& after_run = {}) const {
    reject_traffic("run");
    if (shards_ > 1) {
      if (after_run)
        throw std::logic_error{"ScenarioBuilder: after_run is not supported with shards > 1"};
      return run_sharded_trial(config_, shards_, std::move(name), shard_diag_);
    }
    if (shard_diag_ != nullptr) *shard_diag_ = ShardRunDiagnostics{};
    return run_trial(config_, std::move(name), after_run);
  }

  /// Construct the closed-loop traffic scenario (requires
  /// with_traffic_flow). Seed defaults to the builder's seed.
  std::unique_ptr<TrafficScenario> build_traffic_scenario() const {
    if (!traffic_.enabled)
      throw std::logic_error{"ScenarioBuilder: call with_traffic_flow before build_traffic_scenario"};
    TrafficConfig cfg = traffic_;
    if (cfg.seed == 1) cfg.seed = config_.seed;
    return std::make_unique<TrafficScenario>(std::move(cfg));
  }

  /// Run the closed-loop traffic scenario and collect its sweep row.
  /// Honors with_shards(k > 1) via core::run_sharded_traffic.
  TrafficRunResult run_traffic(std::string name = {}) const {
    if (shards_ > 1) {
      if (!traffic_.enabled)
        throw std::logic_error{"ScenarioBuilder: call with_traffic_flow before run_traffic"};
      TrafficConfig cfg = traffic_;
      if (cfg.seed == 1) cfg.seed = config_.seed;
      return run_sharded_traffic(cfg, shards_, std::move(name), shard_diag_);
    }
    if (shard_diag_ != nullptr) *shard_diag_ = ShardRunDiagnostics{};
    auto scenario = build_traffic_scenario();
    scenario->run();
    return scenario->result(std::move(name));
  }

 private:
  void reject_traffic(const char* what) const {
    if (traffic_.enabled)
      throw std::logic_error{std::string{"ScenarioBuilder: "} + what +
                             " is the scripted-scenario terminal; a traffic config is installed — "
                             "use run_traffic/build_traffic_scenario"};
  }

  ScenarioConfig config_;
  TrafficConfig traffic_;
  std::size_t shards_{1};
  ShardRunDiagnostics* shard_diag_{nullptr};
};

}  // namespace eblnet::core
