#include "core/trial.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace eblnet::core {

std::vector<trace::DelaySample> TrialResult::p1_all() const {
  std::vector<trace::DelaySample> out = p1_middle;
  out.insert(out.end(), p1_trailing.begin(), p1_trailing.end());
  return out;
}

std::vector<trace::DelaySample> TrialResult::p2_all() const {
  std::vector<trace::DelaySample> out = p2_middle;
  out.insert(out.end(), p2_trailing.begin(), p2_trailing.end());
  return out;
}

double TrialResult::p1_steady_state_delay_s(std::size_t skip) const {
  stats::Summary s;
  for (const auto* flow : {&p1_middle, &p1_trailing}) {
    for (const auto& d : *flow) {
      if (d.seq >= skip) s.add(d.delay_seconds());
    }
  }
  return s.empty() ? -1.0 : s.mean();
}

std::size_t TrialResult::p1_transient_end_mser() const {
  std::vector<double> series;
  series.reserve(p1_middle.size());
  for (const auto& d : p1_middle) series.push_back(d.delay_seconds());
  return stats::mser5_truncation(series);
}

ScenarioConfig make_trial_config(std::size_t packet_bytes, MacType mac) {
  ScenarioConfig cfg;
  cfg.packet_bytes = packet_bytes;
  cfg.mac = mac;
  return cfg;
}

ScenarioConfig trial1_config() { return make_trial_config(1000, MacType::kTdma); }
ScenarioConfig trial2_config() { return make_trial_config(500, MacType::kTdma); }
ScenarioConfig trial3_config() { return make_trial_config(1000, MacType::k80211); }

namespace {

/// CI over the samples inside the platoon's communication window only
/// (zeros outside the window would make "average throughput" meaningless).
stats::ConfidenceInterval throughput_ci(const stats::TimeSeries& series, sim::Time from,
                                        sim::Time to) {
  std::vector<double> window;
  for (const auto& p : series.points()) {
    if (p.t >= from && p.t <= to) window.push_back(p.value);
  }
  if (window.size() < 20) {
    stats::Summary s;
    for (const double v : window) s.add(v);
    return stats::mean_confidence_interval(s);
  }
  return stats::batch_means_confidence_interval(window, 10);
}

/// Delivery bookkeeping for one (ip_src, ip_dst, app_seq) data packet.
struct DeliveryRecord {
  sim::Time first_send{};
  bool delivered{false};
};

/// Hull of the plan's scheduled fault events, as [start, end] seconds.
/// Permanent faults (zero duration) extend the window to `run_end`.
/// Returns {-1, -1} for an empty plan.
std::pair<double, double> outage_window(const sim::FaultPlan& plan, sim::Time run_end) {
  double start = -1.0, end = -1.0;
  for (const sim::FaultEvent& e : plan.events) {
    const double s = e.at.to_seconds();
    const double f = e.duration.is_zero() ? run_end.to_seconds() : (e.at + e.duration).to_seconds();
    if (start < 0.0 || s < start) start = s;
    if (f > end) end = f;
  }
  return {start, start < 0.0 ? -1.0 : end};
}

/// Application-level delivery accounting: offered = distinct data packets
/// first sent at the agent layer, delivered = those also received at the
/// agent layer of their IP destination. Windowed ratios classify packets
/// by send time against the outage hull.
void compute_delivery_ratios(TrialResult& r, const trace::TraceStore& records) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, DeliveryRecord> offered;
  for (const net::TraceRecord& rec : records) {
    if (rec.layer != net::TraceLayer::kAgent) continue;
    if (rec.type != net::PacketType::kUdpData && rec.type != net::PacketType::kTcpData) continue;
    const std::pair<std::uint64_t, std::uint64_t> key{
        (static_cast<std::uint64_t>(rec.ip_src) << 32) | rec.ip_dst, rec.app_seq};
    if (rec.action == net::TraceAction::kSend) {
      offered.try_emplace(key, DeliveryRecord{rec.t, false});  // first send wins
    } else if (rec.action == net::TraceAction::kRecv && rec.node == rec.ip_dst) {
      const auto it = offered.find(key);
      if (it != offered.end()) it->second.delivered = true;
    }
  }
  if (offered.empty()) return;

  const double out_start = r.resilience.outage_start_s;
  const double out_end = r.resilience.outage_end_s;
  std::uint64_t delivered = 0, during = 0, during_ok = 0, after = 0, after_ok = 0;
  for (const auto& [key, d] : offered) {
    (void)key;
    delivered += d.delivered ? 1 : 0;
    if (out_start < 0.0) continue;
    const double sent = d.first_send.to_seconds();
    if (sent >= out_start && sent <= out_end) {
      ++during;
      during_ok += d.delivered ? 1 : 0;
    } else if (sent > out_end) {
      ++after;
      after_ok += d.delivered ? 1 : 0;
    }
  }
  r.resilience.delivery_ratio =
      static_cast<double>(delivered) / static_cast<double>(offered.size());
  if (during > 0)
    r.resilience.delivery_ratio_during_outage =
        static_cast<double>(during_ok) / static_cast<double>(during);
  if (after > 0)
    r.resilience.delivery_ratio_after_outage =
        static_cast<double>(after_ok) / static_cast<double>(after);
}

}  // namespace

TrialResult extract_trial_result(const ScenarioConfig& config, std::string name,
                                 const trace::TraceStore& records,
                                 stats::TimeSeries p1_throughput, stats::TimeSeries p2_throughput,
                                 TrialMetrics metrics, std::uint64_t events_executed,
                                 const sim::FaultController* faults) {
  TrialResult r;
  r.name = std::move(name);
  r.config = config;
  r.events_executed = events_executed;
  r.metrics = std::move(metrics);

  const trace::DelayAnalyzer delays{records};
  r.p1_middle = delays.flow(EblScenario::kP1Lead, EblScenario::kP1Middle);
  r.p1_trailing = delays.flow(EblScenario::kP1Lead, EblScenario::kP1Trailing);
  r.p2_middle = delays.flow(EblScenario::kP2Lead, EblScenario::kP2Middle);
  r.p2_trailing = delays.flow(EblScenario::kP2Lead, EblScenario::kP2Trailing);

  r.p1_throughput = std::move(p1_throughput);
  r.p2_throughput = std::move(p2_throughput);

  // Platoon 1 communicates from brake onset to the end of the run;
  // platoon 2 from t=0 until it departs.
  r.p1_throughput_ci = throughput_ci(r.p1_throughput, config.platoon1_brake_at, config.duration);
  r.p2_throughput_ci =
      throughput_ci(r.p2_throughput, sim::Time::zero(), config.resolved_platoon2_depart());

  {
    double initial = -1.0;
    for (const auto* flow : {&r.p1_middle, &r.p1_trailing}) {
      const double d = trace::DelayAnalyzer::initial_packet_delay_seconds(*flow);
      if (d >= 0.0 && (initial < 0.0 || d > initial)) initial = d;
    }
    // The *latest*-notified follower bounds the platoon's safety, so take
    // the max over followers.
    r.p1_initial_packet_delay_s = initial;
  }

  for (const auto& rec : records) {
    if (rec.action == net::TraceAction::kSend && rec.layer == net::TraceLayer::kMac) {
      if (net::is_routing_control(rec.type)) ++r.routing_control_sends;
      if (rec.type == net::PacketType::kTcpData || rec.type == net::PacketType::kUdpData)
        ++r.data_frame_sends;
      continue;
    }
    if (rec.action != net::TraceAction::kDrop) continue;
    if (rec.layer == net::TraceLayer::kIfq) ++r.ifq_drops;
    if (rec.layer == net::TraceLayer::kPhy && rec.reason == "COL") ++r.phy_collisions;
    if (rec.layer == net::TraceLayer::kMac && rec.reason == "RET") ++r.mac_retry_drops;
  }

  r.resilience.faults_enabled = !config.faults.empty();
  if (faults != nullptr) {
    r.resilience.crashes = faults->crashes().size();
    r.resilience.injected_drops = faults->injected_drops();
    r.resilience.jam_bursts = faults->jam_bursts();
  }
  if (config.enable_metrics) {
    const sim::GaugeStat reroute = r.metrics.gauge(sim::Gauge::kAodvRerouteSeconds);
    if (reroute.count > 0) r.resilience.time_to_reroute_s = reroute.mean();
  }
  std::tie(r.resilience.outage_start_s, r.resilience.outage_end_s) =
      outage_window(config.faults, config.duration);
  compute_delivery_ratios(r, records);
  return r;
}

TrialResult run_trial(const ScenarioConfig& config, std::string name,
                      const std::function<void(EblScenario&)>& after_run) {
  EblScenario scenario{config};
  scenario.run();
  if (after_run) after_run(scenario);

  TrialMetrics snapshot;
  if (config.enable_metrics) {
    // Fold residual queue occupancy into the registry so the conservation
    // identity enqueued == dequeued + dropped + removed + residual closes.
    auto& metrics = scenario.env().metrics();
    for (std::size_t i = 0; i < scenario.node_count(); ++i) {
      const net::MacLayer* mac = scenario.node(i).mac();
      const net::PacketQueue* ifq = mac ? mac->interface_queue() : nullptr;
      if (ifq && ifq->length() > 0) {
        metrics.add(static_cast<std::uint32_t>(i), sim::Counter::kIfqResidual, ifq->length());
      }
    }
    snapshot = metrics.snapshot();
  }

  return extract_trial_result(config, std::move(name), scenario.trace().records(),
                              scenario.throughput1().series(), scenario.throughput2().series(),
                              std::move(snapshot), scenario.env().scheduler().executed_count(),
                              &scenario.env().faults());
}

}  // namespace eblnet::core
