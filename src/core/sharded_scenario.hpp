#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/traffic_scenario.hpp"
#include "core/trial.hpp"
#include "sim/shard.hpp"

namespace eblnet::core {

/// Per-run observability for a sharded execution: how the conservative
/// engine behaved, not what the simulation computed (that is the
/// TrialResult / TrafficRunResult, identical to a serial run).
struct ShardRunDiagnostics {
  std::size_t shards{1};
  double lookahead_us{0.0};  ///< promise lift, microseconds
  std::vector<sim::ShardStats> per_shard;
  std::uint64_t seam_messages{0};   ///< cross-shard posts delivered
  std::uint64_t broadcasts{0};      ///< local transmits, summed over shards
  std::uint64_t remote_injects{0};  ///< seam replays executed
  std::uint64_t total_events{0};    ///< scheduler events, summed over shards
  double stall_seconds_total{0.0};  ///< wall time shards spent unable to advance

  /// Fraction of broadcasts that had to cross at least one seam.
  double seam_crossing_ratio() const noexcept {
    return broadcasts == 0 ? 0.0
                           : static_cast<double>(seam_messages) / static_cast<double>(broadcasts);
  }
};

/// Run the intersection scenario space-sharded over `shards` conservative
/// shards and extract the TrialResult. `shards <= 1` falls through to
/// run_trial() unchanged (bit-identical to the serial engine, including
/// the shared-Rng draw order). `shards > 1` forces per-node RNG streams
/// (ScenarioConfig::node_rng_streams) on a copy of the config — the
/// property that makes the sharded run reproduce a serial run with the
/// same flag; compare against run_trial with node_rng_streams = true.
///
/// Rejected with shards > 1 (throws std::invalid_argument): fault plans,
/// reactive braking, and Nakagami fading — each couples shards through
/// state the seam protocol does not replicate.
TrialResult run_sharded_trial(const ScenarioConfig& config, std::size_t shards,
                              std::string name = {}, ShardRunDiagnostics* diag = nullptr);

/// Sharded counterpart of a TrafficScenario run: the IDM flow is
/// replicated per shard (bit-identical dynamics everywhere), radio
/// stacks are partitioned by lane, and warned-policy installations are
/// mirrored across seams. `shards <= 1` runs the serial TrafficScenario
/// unchanged.
TrafficRunResult run_sharded_traffic(const TrafficConfig& config, std::size_t shards,
                                     std::string name = {}, ShardRunDiagnostics* diag = nullptr);

}  // namespace eblnet::core
