#pragma once

#include "net/env.hpp"
#include "sim/timer.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/udp.hpp"

namespace eblnet::app {

/// Constant-bit-rate datagram source over UDP (NS-2
/// Application/Traffic/CBR on Agent/UDP).
class CbrSource {
 public:
  /// Emits one `packet_bytes` datagram every `interval` while running.
  CbrSource(net::Env& env, transport::UdpAgent& udp, std::size_t packet_bytes,
            sim::Time interval);

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  std::size_t packet_bytes() const noexcept { return packet_bytes_; }
  sim::Time interval() const noexcept { return interval_; }

  /// Interval for a target application-layer bit rate.
  static sim::Time interval_for_rate(std::size_t packet_bytes, double rate_bps) {
    return sim::Time::seconds(static_cast<double>(packet_bytes) * 8.0 / rate_bps);
  }

 private:
  void tick();

  transport::UdpAgent& udp_;
  std::size_t packet_bytes_;
  sim::Time interval_;
  bool running_{false};
  sim::Timer timer_;
};

/// Constant-bit-rate writer into a TCP connection — the paper's traffic
/// model (CBR generation carried over TCP, measured at the TCPSink).
/// While running it makes `packet_bytes` more data available to the
/// sender every `interval`; TCP's window decides when the bytes actually
/// leave, so queueing shows up as one-way delay at the sink.
class TcpCbrFeeder {
 public:
  TcpCbrFeeder(net::Env& env, transport::TcpSender& tcp, std::size_t packet_bytes,
               sim::Time interval);

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  std::uint64_t packets_offered() const noexcept { return offered_; }

 private:
  void tick();

  transport::TcpSender& tcp_;
  std::size_t packet_bytes_;
  sim::Time interval_;
  bool running_{false};
  std::uint64_t offered_{0};
  sim::Timer timer_;
};

/// Bulk transfer: the TCP sender is permanently backlogged (NS-2 FTP).
class FtpSource {
 public:
  explicit FtpSource(transport::TcpSender& tcp) : tcp_{tcp} {}
  void start() { tcp_.set_infinite_data(); }

 private:
  transport::TcpSender& tcp_;
};

}  // namespace eblnet::app
