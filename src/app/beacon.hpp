#pragma once

#include <functional>
#include <unordered_map>

#include "net/env.hpp"
#include "net/node.hpp"
#include "phy/wireless_phy.hpp"
#include "sim/timer.hpp"

namespace eblnet::app {

/// Cooperative-awareness beaconing parameters (CAM / BSM style).
struct BeaconParams {
  sim::Time interval{sim::Time::milliseconds(100)};  ///< 10 Hz default
  std::size_t payload_bytes{200};
  /// 802.1D user priority carried on every beacon; the EDCA MAC maps it
  /// onto an access category (5 -> AC_VI, the usual CAM assignment).
  std::uint8_t priority{5};
  net::Port port{5005};
  /// Mixed with the node id into the start-phase jitter, so two trials of
  /// the same scenario with different seeds de-synchronise differently.
  std::uint64_t phase_seed{0};
};

/// Periodic single-hop broadcast beaconing — the CAM/BSM heartbeat every
/// V2X safety application sits on, and the traffic source of the
/// intersection study. Each node broadcasts a `payload_bytes` beacon every
/// `interval`, offset by a seeded per-node phase (a pure hash of
/// phase_seed and node id, no RNG stream consumed) so the fleet does not
/// synchronise its transmissions.
///
/// Beacons ride in kBeacon packets with IP broadcast + UDP headers
/// (ttl = 1: never forwarded) so the existing routing/port plumbing
/// carries them without new dispatch paths.
///
/// Per-node measurements, exported through the metrics registry:
///  - kAppBeaconSent / kAppBeaconReceived counters;
///  - kBeaconInterRxSeconds: gap between consecutive beacons from the same
///    sender (the inter-reception time of the beaconing literature);
///  - kChannelBusyRatio: fraction of each beacon interval this node's
///    radio observed the carrier busy (sampled once per tick).
class Beacon final : public net::PortHandler {
 public:
  /// `phy` may be null; then the channel-busy-ratio gauge is not sampled.
  Beacon(net::Env& env, net::Node& node, phy::WirelessPhy* phy, BeaconParams params = {});
  ~Beacon() override;

  Beacon(const Beacon&) = delete;
  Beacon& operator=(const Beacon&) = delete;

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  /// Called for every beacon received, after the metrics are recorded.
  using BeaconCallback = std::function<void(net::NodeId sender, const net::Packet& p)>;
  void set_on_beacon(BeaconCallback cb) { on_beacon_ = std::move(cb); }

  void recv(net::Packet p) override;

  const BeaconParams& params() const noexcept { return params_; }
  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t received() const noexcept { return received_; }

 private:
  void tick();
  void sample_cbr();

  net::Env& env_;
  net::Node& node_;
  phy::WirelessPhy* phy_;
  BeaconParams params_;
  sim::Timer timer_;
  bool running_{false};
  std::uint64_t seq_{0};
  std::uint64_t sent_{0};
  std::uint64_t received_{0};
  sim::Time last_busy_{};
  bool cbr_primed_{false};
  std::unordered_map<net::NodeId, sim::Time> last_rx_;
  BeaconCallback on_beacon_;
};

}  // namespace eblnet::app
