#include "app/beacon.hpp"

#include "sim/rng.hpp"

namespace eblnet::app {

namespace {

/// Domain tag for the per-node beacon phase (see core's kFlowSeedTag idiom).
constexpr std::uint64_t kBeaconSeedTag = 0x5F10'77D0'0003ULL;

/// Map a mixed hash onto [0, 1) with 53 significant bits.
double hash_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Beacon::Beacon(net::Env& env, net::Node& node, phy::WirelessPhy* phy, BeaconParams params)
    : env_{env},
      node_{node},
      phy_{phy},
      params_{params},
      timer_{env.scheduler(), [this] { tick(); }} {
  node_.bind_port(params_.port, this);
}

Beacon::~Beacon() { node_.unbind_port(params_.port); }

void Beacon::start() {
  if (running_) return;
  running_ = true;
  if (phy_) {
    last_busy_ = phy_->busy_time();
    cbr_primed_ = true;
  }
  // Seeded phase jitter: a pure hash, so the offset is a function of
  // (phase_seed, node id) alone and consumes no RNG stream state.
  const std::uint64_t h =
      sim::mix_seed(sim::mix_seed(kBeaconSeedTag, params_.phase_seed), node_.id());
  timer_.schedule_in(params_.interval * hash_unit(h));
}

void Beacon::stop() {
  running_ = false;
  timer_.cancel();
}

void Beacon::tick() {
  if (!running_) return;
  sample_cbr();
  net::Packet p;
  p.uid = env_.alloc_uid();
  p.type = net::PacketType::kBeacon;
  p.payload_bytes = params_.payload_bytes;
  p.created = env_.now();
  p.app_seq = seq_++;
  p.priority = params_.priority;
  p.ip.emplace();
  p.ip->src = node_.id();
  p.ip->dst = net::kBroadcastAddress;
  p.ip->ttl = 1;  // single hop, never forwarded
  p.udp.emplace();
  p.udp->sport = params_.port;
  p.udp->dport = params_.port;
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kAgent, node_.id(), p);
  ++sent_;
  env_.metrics().add(node_.id(), sim::Counter::kAppBeaconSent);
  node_.send(std::move(p));
  timer_.schedule_in(params_.interval);
}

void Beacon::sample_cbr() {
  if (!phy_) return;
  const sim::Time busy = phy_->busy_time();
  if (cbr_primed_) {
    const double ratio = (busy - last_busy_).to_seconds() / params_.interval.to_seconds();
    env_.metrics().sample(node_.id(), sim::Gauge::kChannelBusyRatio, ratio);
  }
  last_busy_ = busy;
  cbr_primed_ = true;
}

void Beacon::recv(net::Packet p) {
  if (p.type != net::PacketType::kBeacon || !p.ip) return;
  const net::NodeId sender = p.ip->src;
  if (sender == node_.id()) return;
  ++received_;
  env_.metrics().add(node_.id(), sim::Counter::kAppBeaconReceived);
  env_.trace(net::TraceAction::kRecv, net::TraceLayer::kAgent, node_.id(), p);
  const sim::Time now = env_.now();
  if (const auto it = last_rx_.find(sender); it != last_rx_.end()) {
    env_.metrics().sample(node_.id(), sim::Gauge::kBeaconInterRxSeconds,
                          (now - it->second).to_seconds());
    it->second = now;
  } else {
    last_rx_.emplace(sender, now);
  }
  if (on_beacon_) on_beacon_(sender, p);
}

}  // namespace eblnet::app
