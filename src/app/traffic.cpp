#include "app/traffic.hpp"

#include <stdexcept>

namespace eblnet::app {

CbrSource::CbrSource(net::Env& env, transport::UdpAgent& udp, std::size_t packet_bytes,
                     sim::Time interval)
    : udp_{udp}, packet_bytes_{packet_bytes}, interval_{interval},
      timer_{env.scheduler(), [this] { tick(); }} {
  if (interval <= sim::Time::zero()) throw std::invalid_argument{"CbrSource: interval must be > 0"};
}

void CbrSource::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void CbrSource::stop() {
  running_ = false;
  timer_.cancel();
}

void CbrSource::tick() {
  if (!running_) return;
  udp_.send(packet_bytes_);
  timer_.schedule_in(interval_);
}

TcpCbrFeeder::TcpCbrFeeder(net::Env& env, transport::TcpSender& tcp, std::size_t packet_bytes,
                           sim::Time interval)
    : tcp_{tcp}, packet_bytes_{packet_bytes}, interval_{interval},
      timer_{env.scheduler(), [this] { tick(); }} {
  if (interval <= sim::Time::zero())
    throw std::invalid_argument{"TcpCbrFeeder: interval must be > 0"};
}

void TcpCbrFeeder::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void TcpCbrFeeder::stop() {
  running_ = false;
  timer_.cancel();
}

void TcpCbrFeeder::tick() {
  if (!running_) return;
  ++offered_;
  tcp_.node().env().metrics().add(tcp_.node().id(), sim::Counter::kAppMessagesGenerated);
  tcp_.advance_bytes(packet_bytes_);
  timer_.schedule_in(interval_);
}

}  // namespace eblnet::app
