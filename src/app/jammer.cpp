#include "app/jammer.hpp"

#include <stdexcept>

namespace eblnet::app {

Jammer::Jammer(net::Env& env, phy::WirelessPhy& phy, sim::Time burst, sim::Time period)
    : env_{env}, phy_{phy}, burst_{burst}, period_{period},
      timer_{env.scheduler(), [this] { tick(); }} {
  if (burst <= sim::Time::zero()) throw std::invalid_argument{"Jammer: burst must be > 0"};
  if (period < burst) throw std::invalid_argument{"Jammer: period must cover the burst"};
}

void Jammer::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void Jammer::stop() {
  running_ = false;
  timer_.cancel();
}

void Jammer::tick() {
  if (!running_) return;
  if (!phy_.transmitting()) {
    net::Packet noise;
    noise.uid = env_.alloc_uid();
    noise.type = net::PacketType::kNoise;
    noise.created = env_.now();
    noise.mac.emplace();
    noise.mac->src = phy_.owner();
    noise.mac->dst = net::kBroadcastAddress;
    ++bursts_;
    phy_.transmit(std::move(noise), burst_);
  }
  timer_.schedule_in(period_);
}

}  // namespace eblnet::app
