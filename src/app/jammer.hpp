#pragma once

#include "net/env.hpp"
#include "phy/wireless_phy.hpp"
#include "sim/timer.hpp"

namespace eblnet::app {

/// A constant jammer for DoS experiments (the attack class the paper's
/// §III.E security discussion weighs TDMA+FHSS against). The jammer
/// drives its radio directly — no carrier sense, no MAC — emitting noise
/// bursts of `burst` length every `period`, i.e. a duty cycle of
/// burst/period on its (fixed) channel.
///
/// This tool exists for the adversarial benches and tests in this
/// repository; it only transmits inside the simulator.
class Jammer {
 public:
  Jammer(net::Env& env, phy::WirelessPhy& phy, sim::Time burst, sim::Time period);

  void start();
  void stop();

  double duty_cycle() const noexcept { return burst_.to_seconds() / period_.to_seconds(); }
  std::uint64_t bursts_sent() const noexcept { return bursts_; }

 private:
  void tick();

  net::Env& env_;
  phy::WirelessPhy& phy_;
  sim::Time burst_;
  sim::Time period_;
  bool running_{false};
  std::uint64_t bursts_{0};
  sim::Timer timer_;
};

}  // namespace eblnet::app
