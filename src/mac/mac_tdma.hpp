#pragma once

#include "mac/mac_base.hpp"
#include "sim/timer.hpp"

namespace eblnet::mac {

/// TDMA frame plan shared by every node in the network (centralised
/// static schedule, as in NS-2's Mac/Tdma): the frame has one slot per
/// node, each slot wide enough for the largest allowed packet. A node may
/// transmit exactly one packet per frame, at the start of its own slot —
/// collision-free by construction, so there are no ACKs and no carrier
/// sensing.
struct TdmaParams {
  double data_rate_bps{11e6};
  /// Slots per frame. NS-2's Mac/Tdma sizes the frame for its configured
  /// maximum node count (default 64), NOT the number of active nodes —
  /// the idle slots are what make TDMA's latency so poor in the paper's
  /// six-node scenario. bench/ablation_tdma_slots quantifies this.
  std::size_t num_slots{64};
  /// Largest MAC payload a slot must fit (IP packet incl. headers).
  std::size_t max_packet_bytes{1540};
  std::size_t data_header_bytes{34};
  sim::Time plcp_overhead{sim::Time::microseconds(std::int64_t{192})};
  sim::Time guard_time{sim::Time::microseconds(std::int64_t{25})};

  sim::Time slot_duration() const {
    return plcp_overhead +
           sim::Time::seconds(static_cast<double>(max_packet_bytes + data_header_bytes) * 8.0 /
                              data_rate_bps) +
           guard_time;
  }
  sim::Time frame_duration() const {
    return slot_duration() * static_cast<std::int64_t>(num_slots);
  }
};

/// Time-Division Multiple Access MAC. `slot_index` assigns this node's
/// slot in the global frame; every node in a simulation must share the
/// same TdmaParams for the schedule to be collision-free (verified by the
/// slot-exclusivity property tests).
///
/// TDMA provides no delivery feedback, so `detects_link_failures()` is
/// false and AODV falls back to HELLO-based neighbour tracking.
class MacTdma final : public MacBase {
 public:
  MacTdma(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
          std::unique_ptr<net::PacketQueue> ifq, TdmaParams params, unsigned slot_index);

  void enqueue(net::Packet p) override;
  bool detects_link_failures() const override { return false; }
  void set_link_up(bool up) override;

  const TdmaParams& params() const noexcept { return params_; }
  unsigned slot_index() const noexcept { return slot_index_; }

  std::uint64_t tx_data_count() const noexcept { return tx_data_; }
  std::uint64_t oversize_drop_count() const noexcept { return oversize_drops_; }

 private:
  void on_slot_start();
  void schedule_next_slot();
  void on_rx_end(net::Packet p, bool ok);

  TdmaParams params_;
  unsigned slot_index_;
  sim::Timer slot_timer_;
  std::uint64_t tx_data_{0};
  std::uint64_t oversize_drops_{0};
};

}  // namespace eblnet::mac
