#include "mac/mac_80211.hpp"

#include <algorithm>

namespace eblnet::mac {

Mac80211::Mac80211(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
                   std::unique_ptr<net::PacketQueue> ifq, Mac80211Params params)
    : MacBase{env, address, phy, std::move(ifq)},
      params_{params},
      cw_{params.cw_min},
      difs_timer_{env.scheduler(), [this] { on_difs_complete(); }},
      backoff_timer_{env.scheduler(), [this] { on_backoff_complete(); }},
      response_timer_{env.scheduler(), [this] { on_response_timeout(); }},
      nav_timer_{env.scheduler(), [this] { medium_changed(); }},
      response_tx_timer_{env.scheduler(), [this] { send_scheduled_response(); }},
      post_tx_timer_{env.scheduler(), [this] { on_data_tx_end(); }} {
  phy_.set_rx_end_callback([this](net::Packet p, bool ok) { on_rx_end(std::move(p), ok); });
  phy_.set_carrier_callback([this](bool) { medium_changed(); });
}

// ---------------------------------------------------------------------------
// Upper-layer entry
// ---------------------------------------------------------------------------

void Mac80211::enqueue(net::Packet p) {
  if (!p.mac) p.mac.emplace();
  p.mac->src = address_;
  ifq_->enqueue(std::move(p));
  try_dequeue();
}

void Mac80211::try_dequeue() {
  if (state_ != TxState::kIdle || tx_frame_) return;
  auto next = ifq_->dequeue();
  if (!next) return;
  tx_frame_ = std::move(*next);
  state_ = TxState::kAccess;
  retries_ = 0;
  cts_received_ = false;
  start_access();
}

// ---------------------------------------------------------------------------
// Medium access engine (DIFS + backoff with pause/resume)
// ---------------------------------------------------------------------------

bool Mac80211::medium_busy() const {
  return phy_.carrier_busy() || env_.now() < nav_until_;
}

void Mac80211::medium_changed() {
  const bool busy = medium_busy();
  if (busy == medium_was_busy_) return;
  medium_was_busy_ = busy;
  if (busy) {
    difs_timer_.cancel();
    pause_backoff();
  } else {
    idle_since_ = env_.now();
    if (tx_frame_ || pending_backoff_slots_ > 0) difs_timer_.schedule_at(access_deadline());
  }
}

sim::Time Mac80211::access_deadline() const {
  // Idle-for-DIFS, extended to the EIFS deadline after a corrupted frame.
  return std::max(idle_since_ + params_.difs, eifs_until_);
}

void Mac80211::start_access() {
  if (engine_active()) return;
  if (medium_busy()) {
    if (pending_backoff_slots_ < 0) draw_backoff();
    return;  // medium_changed() resumes us on the busy->idle edge
  }
  const sim::Time deadline = access_deadline();
  if (env_.now() >= deadline) {
    on_difs_complete();
  } else {
    difs_timer_.schedule_at(deadline);
  }
}

void Mac80211::on_difs_complete() {
  if (pending_backoff_slots_ > 0) {
    begin_countdown();
  } else {
    access_granted();
  }
}

void Mac80211::begin_countdown() {
  backoff_anchor_ = env_.now();
  backoff_timer_.schedule_in(params_.slot_time * static_cast<std::int64_t>(pending_backoff_slots_));
}

void Mac80211::pause_backoff() {
  if (!backoff_timer_.pending()) return;
  backoff_timer_.cancel();
  const auto consumed =
      static_cast<int>((env_.now() - backoff_anchor_) / params_.slot_time);
  pending_backoff_slots_ = std::max(0, pending_backoff_slots_ - consumed);
}

void Mac80211::on_backoff_complete() {
  pending_backoff_slots_ = -1;
  access_granted();
}

void Mac80211::access_granted() {
  pending_backoff_slots_ = -1;
  if (tx_frame_ && state_ == TxState::kAccess) transmit_current();
}

void Mac80211::draw_backoff() {
  pending_backoff_slots_ =
      static_cast<int>(env_.rng_for(address_).uniform_int(static_cast<std::uint64_t>(cw_) + 1));
  env_.metrics().add(address_, sim::Counter::kMacBackoffSlots,
                     static_cast<std::uint64_t>(pending_backoff_slots_));
}

// ---------------------------------------------------------------------------
// Transmit side
// ---------------------------------------------------------------------------

sim::Time Mac80211::data_airtime(const net::Packet& p) const {
  const std::size_t bytes = p.size_bytes() + params_.data_header_bytes;
  const bool broadcast = p.mac && p.mac->dst == net::kBroadcastAddress;
  // Broadcasts go at the basic rate so every receiver can decode them.
  const double rate = broadcast ? params_.basic_rate_bps : params_.data_rate_bps;
  return airtime(bytes, rate, params_.plcp_overhead);
}

sim::Time Mac80211::ctrl_airtime(std::size_t bytes) const {
  return airtime(bytes, params_.basic_rate_bps, params_.plcp_overhead);
}

net::Packet Mac80211::make_ctrl(net::PacketType type, net::NodeId dst, sim::Time duration) {
  net::Packet p;
  p.uid = env_.alloc_uid();
  p.type = type;
  p.created = env_.now();
  p.mac.emplace();
  p.mac->src = address_;
  p.mac->dst = dst;
  p.mac->duration = duration;
  return p;
}

bool Mac80211::use_rts_for_current() const {
  return tx_frame_->mac->dst != net::kBroadcastAddress &&
         tx_frame_->size_bytes() >= params_.rts_threshold;
}

unsigned Mac80211::retry_limit_for_current() const {
  return use_rts_for_current() ? params_.long_retry_limit : params_.short_retry_limit;
}

void Mac80211::transmit_current() {
  if (phy_.transmitting() || phy_.receiving()) {
    // Lost the race with an incoming frame; contend again.
    if (pending_backoff_slots_ < 0) draw_backoff();
    return;
  }
  if (use_rts_for_current() && !cts_received_) {
    const sim::Time rts_air = ctrl_airtime(params_.rts_bytes);
    const sim::Time cts_air = ctrl_airtime(params_.cts_bytes);
    const sim::Time ack_air = ctrl_airtime(params_.ack_bytes);
    // NAV covers CTS + DATA + ACK and the three SIFS gaps between them.
    const sim::Time nav =
        cts_air + data_airtime(*tx_frame_) + ack_air + params_.sifs * std::int64_t{3};
    net::Packet rts = make_ctrl(net::PacketType::kMacRts, tx_frame_->mac->dst, nav);
    env_.metrics().add(address_, sim::Counter::kMacRtsSent);
    phy_.transmit(std::move(rts), rts_air);
    state_ = TxState::kWaitCts;
    response_timer_.schedule_in(rts_air + params_.sifs + cts_air + params_.timeout_slack);
    return;
  }
  send_data_frame();
}

void Mac80211::send_data_frame() {
  const bool unicast = tx_frame_->mac->dst != net::kBroadcastAddress;
  const sim::Time air = data_airtime(*tx_frame_);
  net::Packet copy = *tx_frame_;
  copy.mac->retry = retries_ > 0;
  const sim::Time ack_air = ctrl_airtime(params_.ack_bytes);
  copy.mac->duration = unicast ? params_.sifs + ack_air : sim::Time::zero();
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kMac, address_, copy);
  ++tx_data_;
  env_.metrics().add(address_, sim::Counter::kMacTxData);
  if (retries_ > 0) {
    ++tx_retries_;
    env_.metrics().add(address_, sim::Counter::kMacRetries);
  }
  phy_.transmit(std::move(copy), air);
  if (unicast) {
    state_ = TxState::kWaitAck;
    response_timer_.schedule_in(air + params_.sifs + ack_air + params_.timeout_slack);
  } else {
    post_tx_timer_.schedule_in(air);
  }
}

void Mac80211::on_data_tx_end() {
  // Broadcast frames complete unconditionally (no ACK in 802.11).
  finish_frame();
}

void Mac80211::on_response_timeout() {
  if (state_ == TxState::kWaitAck)
    env_.metrics().add(address_, sim::Counter::kMacAckTimeouts);
  ++retries_;
  cw_ = std::min(cw_ * 2 + 1, params_.cw_max);
  if (retries_ > retry_limit_for_current()) {
    ++tx_drops_;
    env_.metrics().add(address_, sim::Counter::kMacRetryDrops);
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kMac, address_, *tx_frame_, "RET");
    const net::Packet failed = std::move(*tx_frame_);
    finish_frame();
    report_tx_fail(failed);
    return;
  }
  state_ = TxState::kAccess;
  cts_received_ = false;
  draw_backoff();
  start_access();
}

void Mac80211::finish_frame() {
  tx_frame_.reset();
  cts_received_ = false;
  state_ = TxState::kIdle;
  retries_ = 0;
  cw_ = params_.cw_min;
  draw_backoff();  // mandatory post-transmission backoff
  try_dequeue();
  if (!engine_active() && pending_backoff_slots_ > 0 && !medium_busy()) start_access();
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

void Mac80211::on_rx_end(net::Packet p, bool ok) {
  if (!ok) {
    // EIFS: a frame we couldn't decode may have been addressed to a
    // neighbour whose ACK we would not hear; hold off long enough.
    const sim::Time eifs_end =
        env_.now() + params_.eifs(static_cast<double>(params_.ack_bytes) * 8.0);
    if (eifs_end > eifs_until_) {
      eifs_until_ = eifs_end;
      difs_timer_.cancel();
      if (!medium_busy() && (tx_frame_ || pending_backoff_slots_ > 0))
        difs_timer_.schedule_at(access_deadline());
    }
    return;
  }
  if (!p.mac) return;
  // A correctly received frame cancels the EIFS penalty (§9.2.3.4).
  eifs_until_ = sim::Time::zero();
  if (p.mac->dst == address_) {
    switch (p.type) {
      case net::PacketType::kMacAck:
        handle_ack();
        return;
      case net::PacketType::kMacCts:
        handle_cts();
        return;
      case net::PacketType::kMacRts:
        handle_rts(p);
        return;
      default:
        handle_data(std::move(p));
        return;
    }
  }
  if (p.mac->dst == net::kBroadcastAddress) {
    if (!net::is_mac_control(p.type) && p.type != net::PacketType::kNoise) {
      p.prev_hop = p.mac->src;
      env_.trace(net::TraceAction::kRecv, net::TraceLayer::kMac, address_, p);
      env_.metrics().add(address_, sim::Counter::kMacRxData);
      deliver_up(std::move(p));
    }
    return;
  }
  // Overheard frame destined elsewhere: honour its NAV reservation.
  if (p.mac->duration > sim::Time::zero()) update_nav(env_.now() + p.mac->duration);
}

void Mac80211::handle_data(net::Packet p) {
  // ACK after SIFS, even for duplicates (the original ACK may have been lost).
  net::Packet ack = make_ctrl(net::PacketType::kMacAck, p.mac->src, sim::Time::zero());
  schedule_response(std::move(ack), ctrl_airtime(params_.ack_bytes));
  if (is_duplicate(p)) {
    ++rx_dups_;
    env_.metrics().add(address_, sim::Counter::kMacDuplicates);
    return;
  }
  p.prev_hop = p.mac->src;
  env_.trace(net::TraceAction::kRecv, net::TraceLayer::kMac, address_, p);
  env_.metrics().add(address_, sim::Counter::kMacRxData);
  deliver_up(std::move(p));
}

void Mac80211::handle_rts(const net::Packet& p) {
  if (env_.now() < nav_until_) return;  // NAV forbids responding
  const sim::Time cts_air = ctrl_airtime(params_.cts_bytes);
  const sim::Time remaining =
      p.mac->duration > params_.sifs + cts_air ? p.mac->duration - params_.sifs - cts_air
                                               : sim::Time::zero();
  net::Packet cts = make_ctrl(net::PacketType::kMacCts, p.mac->src, remaining);
  env_.metrics().add(address_, sim::Counter::kMacCtsSent);
  schedule_response(std::move(cts), cts_air);
}

void Mac80211::handle_cts() {
  if (state_ != TxState::kWaitCts) return;
  response_timer_.cancel();
  cts_received_ = true;
  // Data follows the CTS after SIFS, without further contention.
  net::Packet copy = *tx_frame_;
  copy.mac->retry = retries_ > 0;
  const sim::Time ack_air = ctrl_airtime(params_.ack_bytes);
  copy.mac->duration = params_.sifs + ack_air;
  const sim::Time air = data_airtime(copy);
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kMac, address_, copy);
  ++tx_data_;
  env_.metrics().add(address_, sim::Counter::kMacTxData);
  if (retries_ > 0) env_.metrics().add(address_, sim::Counter::kMacRetries);
  pending_response_ = std::move(copy);
  pending_response_airtime_ = air;
  response_is_data_ = true;
  response_tx_timer_.schedule_in(params_.sifs);
  state_ = TxState::kWaitAck;
  response_timer_.schedule_in(params_.sifs + air + params_.sifs + ack_air +
                              params_.timeout_slack);
}

void Mac80211::handle_ack() {
  if (state_ != TxState::kWaitAck) return;
  response_timer_.cancel();
  finish_frame();
}

void Mac80211::schedule_response(net::Packet p, sim::Time air) {
  pending_response_ = std::move(p);
  pending_response_airtime_ = air;
  response_is_data_ = false;
  response_tx_timer_.schedule_in(params_.sifs);
}

void Mac80211::send_scheduled_response() {
  if (!pending_response_) return;
  if (phy_.transmitting()) {
    // Extremely rare SIFS collision with our own transmission; drop the
    // response (the peer's timeout recovers).
    pending_response_.reset();
    return;
  }
  phy_.transmit(std::move(*pending_response_), pending_response_airtime_);
  pending_response_.reset();
}

void Mac80211::update_nav(sim::Time until) {
  if (until <= nav_until_) return;
  nav_until_ = until;
  nav_timer_.schedule_at(until);
  medium_changed();
}

void Mac80211::set_link_up(bool up) {
  if (up == link_up()) return;
  MacBase::set_link_up(up);
  if (up) return;  // a rebooted DCF is idle until the next enqueue/rx
  difs_timer_.cancel();
  backoff_timer_.cancel();
  response_timer_.cancel();
  nav_timer_.cancel();
  response_tx_timer_.cancel();
  post_tx_timer_.cancel();
  state_ = TxState::kIdle;
  tx_frame_.reset();
  pending_response_.reset();
  pending_backoff_slots_ = -1;
  medium_was_busy_ = false;
  nav_until_ = sim::Time{};
  eifs_until_ = sim::Time{};
  cw_ = params_.cw_min;
  retries_ = 0;
  cts_received_ = false;
}

bool Mac80211::is_duplicate(const net::Packet& p) {
  if (seen_uids_.contains(p.uid)) return true;
  seen_uids_.insert(p.uid);
  seen_order_.push_back(p.uid);
  if (seen_order_.size() > 1024) {
    seen_uids_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

}  // namespace eblnet::mac
