#include "mac/mac_tdma.hpp"

#include <stdexcept>

namespace eblnet::mac {

MacTdma::MacTdma(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
                 std::unique_ptr<net::PacketQueue> ifq, TdmaParams params, unsigned slot_index)
    : MacBase{env, address, phy, std::move(ifq)},
      params_{params},
      slot_index_{slot_index},
      slot_timer_{env.scheduler(), [this] { on_slot_start(); }} {
  if (slot_index >= params.num_slots)
    throw std::invalid_argument{"MacTdma: slot index out of range"};
  phy_.set_rx_end_callback([this](net::Packet p, bool ok) { on_rx_end(std::move(p), ok); });
  schedule_next_slot();
}

void MacTdma::enqueue(net::Packet p) {
  if (!p.mac) p.mac.emplace();
  p.mac->src = address_;
  if (p.size_bytes() > params_.max_packet_bytes) {
    ++oversize_drops_;
    env_.metrics().add(address_, sim::Counter::kTdmaOversizeDrops);
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kMac, address_, p, "SIZE");
    return;
  }
  ifq_->enqueue(std::move(p));
}

void MacTdma::schedule_next_slot() {
  const sim::Time frame = params_.frame_duration();
  const sim::Time offset = params_.slot_duration() * static_cast<std::int64_t>(slot_index_);
  const sim::Time now = env_.now();
  // First frame boundary at or after `now - offset`, then add the offset.
  const std::int64_t frames_elapsed = (now - offset).ns() <= 0 ? 0 : ((now - offset) / frame) + 1;
  sim::Time next = offset + frame * frames_elapsed;
  if (next <= now) next += frame;
  // An injected clock-skew fault offsets this node's view of the slot
  // boundary, breaking the schedule's collision-freedom on purpose.
  const double skew = env_.faults().clock_skew_s(address_);
  if (skew != 0.0) {
    next += sim::Time::seconds(skew);
    while (next <= now) next += frame;
  }
  slot_timer_.schedule_at(next);
}

void MacTdma::set_link_up(bool up) {
  if (up == link_up()) return;
  MacBase::set_link_up(up);
  if (up) {
    schedule_next_slot();
  } else {
    slot_timer_.cancel();
  }
}

void MacTdma::on_slot_start() {
  schedule_next_slot();
  auto p = ifq_->dequeue();
  if (!p) {
    env_.metrics().add(address_, sim::Counter::kTdmaSlotsIdle);
    return;
  }
  const sim::Time air =
      airtime(p->size_bytes() + params_.data_header_bytes, params_.data_rate_bps,
              params_.plcp_overhead);
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kMac, address_, *p);
  ++tx_data_;
  env_.metrics().add(address_, sim::Counter::kTdmaSlotsUsed);
  env_.metrics().add(address_, sim::Counter::kMacTxData);
  phy_.transmit(std::move(*p), air);
}

void MacTdma::on_rx_end(net::Packet p, bool ok) {
  if (!ok || !p.mac) return;
  if (p.type == net::PacketType::kNoise) return;  // jammer energy, not a frame
  if (p.mac->dst != address_ && p.mac->dst != net::kBroadcastAddress) return;
  p.prev_hop = p.mac->src;
  env_.trace(net::TraceAction::kRecv, net::TraceLayer::kMac, address_, p);
  env_.metrics().add(address_, sim::Counter::kMacRxData);
  deliver_up(std::move(p));
}

}  // namespace eblnet::mac
