#include "mac/edca.hpp"

#include <algorithm>
#include <utility>

namespace eblnet::mac {

const char* to_string(AccessCategory ac) noexcept {
  switch (ac) {
    case AccessCategory::kBackground: return "AC_BK";
    case AccessCategory::kBestEffort: return "AC_BE";
    case AccessCategory::kVideo: return "AC_VI";
    case AccessCategory::kVoice: return "AC_VO";
  }
  return "?";
}

namespace {
constexpr AccessCategory kAcOrder[kAccessCategoryCount] = {
    AccessCategory::kVoice, AccessCategory::kVideo, AccessCategory::kBestEffort,
    AccessCategory::kBackground};
}  // namespace

Edca::Edca(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
           std::unique_ptr<net::PacketQueue> ifq, EdcaParams params)
    : MacBase{env, address, phy, std::move(ifq)},
      params_{params},
      access_timer_{env.scheduler(), [this] { on_access_timer(); }},
      response_timer_{env.scheduler(), [this] { on_response_timeout(); }},
      nav_timer_{env.scheduler(), [this] { medium_changed(); }},
      response_tx_timer_{env.scheduler(), [this] { send_scheduled_response(); }},
      post_tx_timer_{env.scheduler(), [this] { on_data_tx_end(); }} {
  for (std::size_t i = 0; i < kAccessCategoryCount; ++i) ac_[i].cw = params_.ac[i].cw_min;
  phy_.set_rx_end_callback([this](net::Packet p, bool ok) { on_rx_end(std::move(p), ok); });
  phy_.set_carrier_callback([this](bool) { medium_changed(); });
}

// ---------------------------------------------------------------------------
// Upper-layer entry and per-AC queueing
// ---------------------------------------------------------------------------

void Edca::enqueue(net::Packet p) {
  if (!p.mac) p.mac.emplace();
  p.mac->src = address_;
  const AccessCategory c = ac_for_priority(p.priority);
  if (!ac_enqueue(c, std::move(p))) return;
  try_dequeue(c);
  // A frame arriving to a busy medium must contend with a drawn backoff
  // (it cannot take the post-AIFS immediate-access path).
  if (st(c).frame && st(c).slots < 0 && medium_busy()) draw_backoff(c);
  if (state_ == TxState::kIdle) reschedule();
}

bool Edca::ac_enqueue(AccessCategory c, net::Packet p) {
  if (c == AccessCategory::kBestEffort) return ifq_->enqueue(std::move(p));
  AcState& a = st(c);
  if (a.queue.size() >= params_.ac_queue_capacity) {
    env_.metrics().add(address_, sim::Counter::kIfqDropped);
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, address_, p, "IFQ");
    return false;
  }
  a.queue.push_back(std::move(p));
  env_.metrics().add(address_, sim::Counter::kIfqEnqueued);
  env_.metrics().sample(address_, sim::Gauge::kIfqDepth,
                        static_cast<double>(a.queue.size()));
  return true;
}

std::optional<net::Packet> Edca::ac_dequeue(AccessCategory c) {
  if (c == AccessCategory::kBestEffort) return ifq_->dequeue();
  AcState& a = st(c);
  if (a.queue.empty()) return std::nullopt;
  net::Packet p = std::move(a.queue.front());
  a.queue.pop_front();
  env_.metrics().add(address_, sim::Counter::kIfqDequeued);
  return p;
}

void Edca::try_dequeue(AccessCategory c) {
  AcState& a = st(c);
  if (a.frame) return;
  auto next = ac_dequeue(c);
  if (!next) return;
  a.frame = std::move(*next);
  a.retries = 0;
}

std::size_t Edca::ac_queue_length(AccessCategory c) const noexcept {
  if (c == AccessCategory::kBestEffort) return ifq_->length();
  return st(c).queue.size();
}

std::vector<net::Packet> Edca::flush_next_hop(net::NodeId next_hop) {
  std::vector<net::Packet> out = ifq_->remove_by_next_hop(next_hop);
  for (AccessCategory c :
       {AccessCategory::kBackground, AccessCategory::kVideo, AccessCategory::kVoice}) {
    auto& q = st(c).queue;
    for (auto it = q.begin(); it != q.end();) {
      if (it->mac && it->mac->dst == next_hop) {
        env_.metrics().add(address_, sim::Counter::kIfqRemoved);
        out.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Arbitration engine: one timer at the earliest per-AC grant time.
//
// Countdown accounting is analytic rather than timer-per-AC: each category's
// remaining slots are debited lazily against its anchor — the latest of
// (idle edge + AIFS[ac]), the EIFS deadline, and the point already debited
// this idle period. grant(ac) = anchor + slots * slot_time.
// ---------------------------------------------------------------------------

bool Edca::medium_busy() const {
  return phy_.carrier_busy() || env_.now() < nav_until_;
}

sim::Time Edca::anchor(AccessCategory c) const {
  sim::Time t = idle_since_ + params_.aifs(c);
  if (eifs_edge_ > sim::Time::zero()) {
    const sim::Time eifs_deadline =
        eifs_edge_ + params_.sifs + ctrl_airtime(params_.ack_bytes) + params_.aifs(c);
    t = std::max(t, eifs_deadline);
  }
  return std::max(t, st(c).debited_until);
}

sim::Time Edca::grant_time(AccessCategory c) const {
  const int slots = std::max(0, st(c).slots);
  return anchor(c) + params_.slot_time * static_cast<std::int64_t>(slots);
}

void Edca::debit_countdowns() {
  if (!countdown_running_) return;
  const sim::Time now = env_.now();
  for (AccessCategory c : kAcOrder) {
    AcState& a = st(c);
    if (a.slots <= 0) continue;
    const sim::Time t = anchor(c);
    if (now <= t) continue;
    const auto consumed =
        std::min<std::int64_t>((now - t) / params_.slot_time, a.slots);
    a.slots -= static_cast<int>(consumed);
    a.debited_until = t + params_.slot_time * consumed;
  }
}

void Edca::pause_countdowns() {
  debit_countdowns();
  countdown_running_ = false;
  access_timer_.cancel();
}

void Edca::reschedule() {
  if (state_ != TxState::kIdle || medium_busy()) {
    countdown_running_ = false;
    access_timer_.cancel();
    return;
  }
  bool any = false;
  sim::Time earliest{};
  for (AccessCategory c : kAcOrder) {
    if (!contending(c)) continue;
    const sim::Time g = grant_time(c);
    if (!any || g < earliest) earliest = g;
    any = true;
  }
  if (!any) {
    countdown_running_ = false;
    access_timer_.cancel();
    return;
  }
  countdown_running_ = true;
  access_timer_.schedule_at(std::max(env_.now(), earliest));
}

void Edca::medium_changed() {
  const bool busy = medium_busy();
  if (busy == medium_was_busy_) return;
  medium_was_busy_ = busy;
  if (busy) {
    pause_countdowns();
  } else {
    idle_since_ = env_.now();
    for (AcState& a : ac_) a.debited_until = sim::Time::zero();
    if (state_ == TxState::kIdle) reschedule();
  }
}

void Edca::on_access_timer() {
  if (state_ != TxState::kIdle) return;
  if (medium_busy()) {
    pause_countdowns();
    return;
  }
  debit_countdowns();
  const sim::Time now = env_.now();
  int winner = -1;
  for (AccessCategory c : kAcOrder) {  // highest category first
    if (!contending(c) || grant_time(c) > now) continue;
    AcState& a = st(c);
    if (!a.frame) {
      a.slots = -1;  // leftover post-tx backoff expired with nothing to send
      continue;
    }
    if (winner < 0) {
      winner = static_cast<int>(c);
    } else {
      // Internal (virtual) collision: a higher category reached its grant
      // in the same slot; this one behaves as if the medium collided.
      ++internal_collisions_;
      env_.metrics().add(address_, sim::Counter::kMacInternalCollisions);
      double_cw(c);
      draw_backoff(c);
    }
  }
  if (winner < 0) {
    reschedule();
    return;
  }
  const auto c = static_cast<AccessCategory>(winner);
  st(c).slots = -1;  // backoff fully consumed
  transmit_ac(c);
}

void Edca::draw_backoff(AccessCategory c) {
  AcState& a = st(c);
  a.slots = static_cast<int>(
      env_.rng_for(address_).uniform_int(static_cast<std::uint64_t>(a.cw) + 1));
  env_.metrics().add(address_, sim::Counter::kMacBackoffSlots,
                     static_cast<std::uint64_t>(a.slots));
}

void Edca::double_cw(AccessCategory c) {
  AcState& a = st(c);
  a.cw = std::min(a.cw * 2 + 1, params_.ac[static_cast<std::size_t>(c)].cw_max);
}

// ---------------------------------------------------------------------------
// Transmit side
// ---------------------------------------------------------------------------

sim::Time Edca::data_airtime(const net::Packet& p) const {
  const std::size_t bytes = p.size_bytes() + params_.data_header_bytes;
  const bool broadcast = p.mac && p.mac->dst == net::kBroadcastAddress;
  const double rate = broadcast ? params_.basic_rate_bps : params_.data_rate_bps;
  return airtime(bytes, rate, params_.plcp_overhead);
}

sim::Time Edca::ctrl_airtime(std::size_t bytes) const {
  return airtime(bytes, params_.basic_rate_bps, params_.plcp_overhead);
}

void Edca::transmit_ac(AccessCategory c) {
  cur_ac_ = c;
  AcState& a = st(c);
  if (phy_.transmitting() || phy_.receiving()) {
    // Lost the race with an incoming frame; contend again.
    if (a.slots < 0) draw_backoff(c);
    reschedule();
    return;
  }
  const bool unicast = a.frame->mac->dst != net::kBroadcastAddress;
  const sim::Time air = data_airtime(*a.frame);
  const sim::Time ack_air = ctrl_airtime(params_.ack_bytes);
  net::Packet copy = *a.frame;
  copy.mac->retry = a.retries > 0;
  copy.mac->duration = unicast ? params_.sifs + ack_air : sim::Time::zero();
  env_.trace(net::TraceAction::kSend, net::TraceLayer::kMac, address_, copy);
  ++tx_data_;
  ++a.tx_count;
  env_.metrics().add(address_, sim::Counter::kMacTxData);
  if (a.retries > 0) env_.metrics().add(address_, sim::Counter::kMacRetries);
  phy_.transmit(std::move(copy), air);
  if (unicast) {
    state_ = TxState::kWaitAck;
    response_timer_.schedule_in(air + params_.sifs + ack_air + params_.timeout_slack);
  } else {
    // Broadcast (the CAM/BSM case): no ACK exists, so the frame completes
    // unconditionally when it leaves the air — never retried.
    state_ = TxState::kBroadcast;
    post_tx_timer_.schedule_in(air);
  }
}

void Edca::on_data_tx_end() { finish_frame(); }

void Edca::on_response_timeout() {
  env_.metrics().add(address_, sim::Counter::kMacAckTimeouts);
  AcState& a = st(cur_ac_);
  ++a.retries;
  double_cw(cur_ac_);
  if (a.retries > params_.short_retry_limit) {
    ++tx_drops_;
    env_.metrics().add(address_, sim::Counter::kMacRetryDrops);
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kMac, address_, *a.frame, "RET");
    const net::Packet failed = std::move(*a.frame);
    finish_frame();
    report_tx_fail(failed);
    return;
  }
  state_ = TxState::kIdle;
  draw_backoff(cur_ac_);
  reschedule();
}

void Edca::finish_frame() {
  AcState& a = st(cur_ac_);
  a.frame.reset();
  a.retries = 0;
  a.cw = params_.ac[static_cast<std::size_t>(cur_ac_)].cw_min;
  draw_backoff(cur_ac_);  // mandatory post-transmission backoff
  try_dequeue(cur_ac_);
  state_ = TxState::kIdle;
  // The carrier event for our own tx end may not have run yet; fold the
  // edge in ourselves so idle_since_ anchors at the right instant either way.
  medium_changed();
  if (!medium_busy()) reschedule();
}

// ---------------------------------------------------------------------------
// Receive side (DCF's, minus RTS/CTS which the OCB profile never uses)
// ---------------------------------------------------------------------------

void Edca::on_rx_end(net::Packet p, bool ok) {
  if (!ok) {
    // EIFS: the corrupted frame may have been addressed to a neighbour
    // whose ACK we would not hear; every category defers long enough.
    eifs_edge_ = std::max(eifs_edge_, env_.now());
    if (state_ == TxState::kIdle) reschedule();
    return;
  }
  if (!p.mac) return;
  // A correctly received frame cancels the EIFS penalty.
  const bool had_eifs = eifs_edge_ > sim::Time::zero();
  eifs_edge_ = sim::Time::zero();
  if (had_eifs && state_ == TxState::kIdle) reschedule();
  if (p.mac->dst == address_) {
    switch (p.type) {
      case net::PacketType::kMacAck:
        handle_ack();
        return;
      case net::PacketType::kMacRts:
      case net::PacketType::kMacCts:
        return;  // 802.11p OCB: the RTS/CTS exchange does not exist
      default:
        handle_data(std::move(p));
        return;
    }
  }
  if (p.mac->dst == net::kBroadcastAddress) {
    if (!net::is_mac_control(p.type) && p.type != net::PacketType::kNoise) {
      p.prev_hop = p.mac->src;
      env_.trace(net::TraceAction::kRecv, net::TraceLayer::kMac, address_, p);
      env_.metrics().add(address_, sim::Counter::kMacRxData);
      deliver_up(std::move(p));
    }
    return;
  }
  // Overheard frame destined elsewhere: honour its NAV reservation.
  if (p.mac->duration > sim::Time::zero()) update_nav(env_.now() + p.mac->duration);
}

net::Packet Edca::make_ack(net::NodeId dst) {
  net::Packet p;
  p.uid = env_.alloc_uid();
  p.type = net::PacketType::kMacAck;
  p.created = env_.now();
  p.mac.emplace();
  p.mac->src = address_;
  p.mac->dst = dst;
  return p;
}

void Edca::handle_data(net::Packet p) {
  // ACK after SIFS, even for duplicates (the original ACK may have been lost).
  schedule_response(make_ack(p.mac->src), ctrl_airtime(params_.ack_bytes));
  if (is_duplicate(p)) {
    ++rx_dups_;
    env_.metrics().add(address_, sim::Counter::kMacDuplicates);
    return;
  }
  p.prev_hop = p.mac->src;
  env_.trace(net::TraceAction::kRecv, net::TraceLayer::kMac, address_, p);
  env_.metrics().add(address_, sim::Counter::kMacRxData);
  deliver_up(std::move(p));
}

void Edca::handle_ack() {
  if (state_ != TxState::kWaitAck) return;
  response_timer_.cancel();
  finish_frame();
}

void Edca::schedule_response(net::Packet p, sim::Time air) {
  pending_response_ = std::move(p);
  pending_response_airtime_ = air;
  response_tx_timer_.schedule_in(params_.sifs);
}

void Edca::send_scheduled_response() {
  if (!pending_response_) return;
  if (phy_.transmitting()) {
    // Extremely rare SIFS collision with our own transmission; drop the
    // ACK (the peer's timeout recovers).
    pending_response_.reset();
    return;
  }
  phy_.transmit(std::move(*pending_response_), pending_response_airtime_);
  pending_response_.reset();
}

void Edca::update_nav(sim::Time until) {
  if (until <= nav_until_) return;
  nav_until_ = until;
  nav_timer_.schedule_at(until);
  medium_changed();
}

void Edca::set_link_up(bool up) {
  if (up == link_up()) return;
  MacBase::set_link_up(up);  // drains ifq_ (AC_BE) with "FLT" traces
  if (up) return;  // a rebooted EDCA is idle until the next enqueue/rx
  access_timer_.cancel();
  response_timer_.cancel();
  nav_timer_.cancel();
  response_tx_timer_.cancel();
  post_tx_timer_.cancel();
  for (std::size_t i = 0; i < kAccessCategoryCount; ++i) {
    AcState& a = ac_[i];
    for (net::Packet& p : a.queue) {
      env_.metrics().add(address_, sim::Counter::kIfqFaultFlushed);
      env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, address_, p, "FLT");
    }
    a.queue.clear();
    a.frame.reset();
    a.slots = -1;
    a.cw = params_.ac[i].cw_min;
    a.retries = 0;
    a.debited_until = sim::Time::zero();
  }
  pending_response_.reset();
  state_ = TxState::kIdle;
  medium_was_busy_ = false;
  countdown_running_ = false;
  idle_since_ = sim::Time{};
  nav_until_ = sim::Time{};
  eifs_edge_ = sim::Time{};
}

bool Edca::is_duplicate(const net::Packet& p) {
  if (seen_uids_.contains(p.uid)) return true;
  seen_uids_.insert(p.uid);
  seen_order_.push_back(p.uid);
  if (seen_order_.size() > 1024) {
    seen_uids_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

}  // namespace eblnet::mac
