#include "mac/arp.hpp"

#include <stdexcept>

namespace eblnet::mac {

ArpLayer::ArpLayer(net::Env& env, std::unique_ptr<net::MacLayer> inner, ArpParams params)
    : env_{env}, inner_{std::move(inner)}, params_{params} {
  if (!inner_) throw std::invalid_argument{"ArpLayer: inner MAC required"};
  inner_->set_rx_callback([this](net::Packet p) { on_rx(std::move(p)); });
}

void ArpLayer::enqueue(net::Packet p) {
  if (!p.mac) p.mac.emplace();
  const net::NodeId dst = p.mac->dst;
  // Broadcasts and already-resolved neighbours go straight down.
  if (dst == net::kBroadcastAddress || resolved_.contains(dst)) {
    inner_->enqueue(std::move(p));
    return;
  }
  Pending& pend = pending_[dst];
  if (pend.held.size() >= params_.hold_per_destination) {
    // NS-2 semantics: the newest packet displaces the held one.
    ++held_drops_;
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, address(), pend.held.front(),
               "ARP");
    pend.held.pop_front();
  }
  pend.held.push_back(std::move(p));
  if (!pend.timer) {
    send_request(dst);
    pend.timer = std::make_unique<sim::Timer>(env_.scheduler(),
                                              [this, dst] { on_retry_timeout(dst); });
    pend.timer->schedule_in(params_.retry_interval);
  }
}

void ArpLayer::set_tx_fail_callback(TxFailCallback cb) {
  // Wrap so ARP's own frames never reach the routing agent's handler, and
  // a failed neighbour becomes unresolved again.
  inner_->set_tx_fail_callback([this, cb = std::move(cb)](const net::Packet& p) {
    if (p.type == net::PacketType::kArpReply) return;
    if (p.mac) resolved_.erase(p.mac->dst);
    if (cb) cb(p);
  });
}

std::vector<net::Packet> ArpLayer::flush_next_hop(net::NodeId next_hop) {
  std::vector<net::Packet> out = inner_->flush_next_hop(next_hop);
  const auto it = pending_.find(next_hop);
  if (it != pending_.end()) {
    for (auto& p : it->second.held) out.push_back(std::move(p));
    pending_.erase(it);
  }
  return out;
}

void ArpLayer::on_rx(net::Packet p) {
  // Hearing a frame from a node proves its reachability (optional; ARP
  // replies always resolve).
  if (p.prev_hop != net::kBroadcastAddress &&
      (params_.passive_learning || p.type == net::PacketType::kArpReply)) {
    resolved_.insert(p.prev_hop);
  }

  if (p.type == net::PacketType::kArpRequest) {
    // The request's target rides in app_seq (flat address space).
    if (static_cast<net::NodeId>(p.app_seq) == address()) {
      ++replies_sent_;
      inner_->enqueue(make_arp(net::PacketType::kArpReply, p.prev_hop));
    }
    return;
  }
  if (p.type == net::PacketType::kArpReply) {
    const net::NodeId who = p.prev_hop;
    const auto it = pending_.find(who);
    if (it != pending_.end()) {
      auto held = std::move(it->second.held);
      pending_.erase(it);
      for (auto& q : held) inner_->enqueue(std::move(q));
    }
    return;
  }
  if (rx_cb_) rx_cb_(std::move(p));
}

void ArpLayer::send_request(net::NodeId dst) {
  ++requests_sent_;
  net::Packet req = make_arp(net::PacketType::kArpRequest, net::kBroadcastAddress);
  req.app_seq = dst;  // who we are looking for
  inner_->enqueue(std::move(req));
}

void ArpLayer::on_retry_timeout(net::NodeId dst) {
  const auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  Pending& pend = it->second;
  if (pend.retries >= params_.max_retries) {
    for (const auto& p : pend.held)
      env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, address(), p, "ARP");
    held_drops_ += pend.held.size();
    pending_.erase(it);
    return;
  }
  ++pend.retries;
  send_request(dst);
  pend.timer->schedule_in(params_.retry_interval);
}

net::Packet ArpLayer::make_arp(net::PacketType type, net::NodeId dst) {
  net::Packet p;
  p.uid = env_.alloc_uid();
  p.type = type;
  p.payload_bytes =
      type == net::PacketType::kArpRequest ? params_.request_bytes : params_.reply_bytes;
  p.created = env_.now();
  p.mac.emplace();
  p.mac->src = address();
  p.mac->dst = dst;
  return p;
}

}  // namespace eblnet::mac
