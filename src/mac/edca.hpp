#pragma once

#include <array>
#include <deque>
#include <optional>
#include <unordered_set>

#include "mac/mac_base.hpp"
#include "sim/timer.hpp"

namespace eblnet::mac {

/// 802.11e/802.11p access categories, lowest priority first. The numeric
/// order is the arbitration order: on an internal-collision tie the
/// highest category transmits and the lower ones back off.
enum class AccessCategory : std::uint8_t {
  kBackground = 0,  ///< AC_BK
  kBestEffort = 1,  ///< AC_BE
  kVideo = 2,       ///< AC_VI
  kVoice = 3,       ///< AC_VO
};

inline constexpr std::size_t kAccessCategoryCount = 4;

const char* to_string(AccessCategory ac) noexcept;

/// 802.1D user-priority (0-7) to access-category mapping (802.11 §10.2.4.2).
constexpr AccessCategory ac_for_priority(std::uint8_t priority) noexcept {
  switch (priority) {
    case 1:
    case 2:
      return AccessCategory::kBackground;
    case 0:
    case 3:
    default:
      return AccessCategory::kBestEffort;
    case 4:
    case 5:
      return AccessCategory::kVideo;
    case 6:
    case 7:
      return AccessCategory::kVoice;
  }
}

/// Per-category contention parameters: AIFS = SIFS + aifsn * slot.
struct EdcaAcParams {
  unsigned aifsn;
  unsigned cw_min;
  unsigned cw_max;
};

/// 802.11p (10 MHz OFDM) EDCA parameters. Timing follows the 802.11-2012
/// OCB profile: 13 us slots, 32 us SIFS, 40 us PLCP preamble+signal, and a
/// 6 Mb/s default rate for both data and control. The per-AC table is the
/// 802.11p default EDCA parameter set.
struct EdcaParams {
  double data_rate_bps{6e6};
  double basic_rate_bps{6e6};  ///< broadcasts and ACKs
  sim::Time slot_time{sim::Time::microseconds(std::int64_t{13})};
  sim::Time sifs{sim::Time::microseconds(std::int64_t{32})};
  sim::Time plcp_overhead{sim::Time::microseconds(std::int64_t{40})};
  std::size_t data_header_bytes{34};  ///< 802.11 data header + FCS
  std::size_t ack_bytes{14};
  unsigned short_retry_limit{7};
  /// Allowance for propagation + rx/tx turnaround in the ACK timeout.
  sim::Time timeout_slack{sim::Time::microseconds(std::int64_t{15})};
  /// Capacity of each internal AC queue (BK/VI/VO); AC_BE is served from
  /// the node's interface queue, which carries its own limit.
  std::size_t ac_queue_capacity{50};
  std::array<EdcaAcParams, kAccessCategoryCount> ac{{
      {9, 15, 1023},  // AC_BK
      {6, 15, 1023},  // AC_BE
      {3, 7, 15},     // AC_VI
      {2, 3, 7},      // AC_VO
  }};

  sim::Time aifs(AccessCategory c) const noexcept {
    return sifs + slot_time * static_cast<std::int64_t>(ac[static_cast<std::size_t>(c)].aifsn);
  }
};

/// IEEE 802.11e EDCA (as profiled by 802.11p for vehicular use): four
/// access categories contend independently, each with its own AIFS and
/// contention window, inside one station. A single arbitration timer fires
/// at the earliest per-AC grant time; when several categories reach their
/// grant in the same slot the highest one transmits and the others take an
/// internal collision (CW doubling plus a fresh draw, counted by
/// kMacInternalCollisions).
///
/// Broadcast frames — the CAM/BSM beacons the V2X scenarios rely on — are
/// fire-and-forget: no ACK, no retry, no RTS/CTS (which EDCA here never
/// uses, matching the 802.11p OCB profile where the exchange is absent).
/// Unicast data keeps the DCF positive-ACK/retransmission contract so the
/// routing stack's link-failure detection still works.
///
/// Frames map onto categories via Packet::priority (802.1D, see
/// ac_for_priority). AC_BE drains the node's interface queue so the
/// scenario's queue discipline/capacity knobs keep their meaning; the
/// other three categories use small internal drop-tail queues.
class Edca final : public MacBase {
 public:
  Edca(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
       std::unique_ptr<net::PacketQueue> ifq, EdcaParams params = {});

  void enqueue(net::Packet p) override;
  bool detects_link_failures() const override { return true; }
  void set_link_up(bool up) override;
  std::vector<net::Packet> flush_next_hop(net::NodeId next_hop) override;

  const EdcaParams& params() const noexcept { return params_; }

  // statistics
  std::uint64_t tx_data_count() const noexcept { return tx_data_; }
  std::uint64_t tx_drop_count() const noexcept { return tx_drops_; }
  std::uint64_t rx_dup_count() const noexcept { return rx_dups_; }
  std::uint64_t internal_collision_count() const noexcept { return internal_collisions_; }
  std::uint64_t ac_tx_count(AccessCategory c) const noexcept {
    return st(c).tx_count;
  }
  std::size_t ac_queue_length(AccessCategory c) const noexcept;

 private:
  enum class TxState : std::uint8_t { kIdle, kBroadcast, kWaitAck };

  struct AcState {
    std::deque<net::Packet> queue;     ///< unused for AC_BE (served by ifq_)
    std::optional<net::Packet> frame;  ///< head frame contending for the medium
    int slots{-1};                     ///< remaining backoff slots; -1 = none drawn
    unsigned cw{0};
    unsigned retries{0};
    /// Slots already debited count from here within the current idle
    /// period (reset on every busy->idle edge); prevents double-debiting
    /// when the arbitration timer fires more than once per idle stretch.
    sim::Time debited_until{};
    std::uint64_t tx_count{0};
  };

  AcState& st(AccessCategory c) noexcept { return ac_[static_cast<std::size_t>(c)]; }
  const AcState& st(AccessCategory c) const noexcept {
    return ac_[static_cast<std::size_t>(c)];
  }

  // --- per-AC queueing (AC_BE rides ifq_, the rest are internal) ---
  bool ac_enqueue(AccessCategory c, net::Packet p);
  std::optional<net::Packet> ac_dequeue(AccessCategory c);
  void try_dequeue(AccessCategory c);

  // --- arbitration engine ---
  bool medium_busy() const;
  void medium_changed();
  sim::Time anchor(AccessCategory c) const;
  sim::Time grant_time(AccessCategory c) const;
  bool contending(AccessCategory c) const {
    const AcState& a = st(c);
    return a.frame.has_value() || a.slots >= 0;
  }
  void debit_countdowns();
  void pause_countdowns();
  void reschedule();
  void on_access_timer();
  void draw_backoff(AccessCategory c);
  void double_cw(AccessCategory c);

  // --- frame lifecycle ---
  void transmit_ac(AccessCategory c);
  void on_data_tx_end();
  void on_response_timeout();
  void finish_frame();

  // --- receive side ---
  void on_rx_end(net::Packet p, bool ok);
  void handle_data(net::Packet p);
  void handle_ack();
  void schedule_response(net::Packet p, sim::Time air);
  void send_scheduled_response();
  void update_nav(sim::Time until);

  // --- helpers ---
  sim::Time data_airtime(const net::Packet& p) const;
  sim::Time ctrl_airtime(std::size_t bytes) const;
  net::Packet make_ack(net::NodeId dst);
  bool is_duplicate(const net::Packet& p);

  EdcaParams params_;
  std::array<AcState, kAccessCategoryCount> ac_;

  // arbitration state
  bool medium_was_busy_{false};
  bool countdown_running_{false};
  sim::Time idle_since_{};
  sim::Time nav_until_{};
  /// Time of the last corrupted reception; zero once a frame is decoded
  /// correctly again (EIFS rule, §9.3.2.3.7).
  sim::Time eifs_edge_{};

  // frame in flight
  TxState state_{TxState::kIdle};
  AccessCategory cur_ac_{AccessCategory::kBestEffort};

  // SIFS-spaced ACK
  std::optional<net::Packet> pending_response_;
  sim::Time pending_response_airtime_{};

  // duplicate detection
  std::unordered_set<std::uint64_t> seen_uids_;
  std::deque<std::uint64_t> seen_order_;

  sim::Timer access_timer_;
  sim::Timer response_timer_;
  sim::Timer nav_timer_;
  sim::Timer response_tx_timer_;
  sim::Timer post_tx_timer_;

  std::uint64_t tx_data_{0};
  std::uint64_t tx_drops_{0};
  std::uint64_t rx_dups_{0};
  std::uint64_t internal_collisions_{0};
};

}  // namespace eblnet::mac
