#pragma once

#include <deque>
#include <optional>
#include <unordered_set>

#include "mac/mac_base.hpp"
#include "sim/timer.hpp"

namespace eblnet::mac {

/// 802.11 (DSSS) DCF parameters. Timing defaults are the classic
/// 802.11b values; the 11 Mb/s data rate with 1 Mb/s control/broadcast
/// rate matches NS-2 configurations of the paper's era.
struct Mac80211Params {
  /// 5.5 Mb/s (802.11b CCK) calibrates the scenario near the paper's
  /// operating point: the two EBL links offer 2.4 Mb/s of application
  /// load, ~90% of this rate's effective service capacity.
  double data_rate_bps{5.5e6};
  double basic_rate_bps{1e6};  ///< control frames, broadcasts, PLCP
  sim::Time slot_time{sim::Time::microseconds(std::int64_t{20})};
  sim::Time sifs{sim::Time::microseconds(std::int64_t{10})};
  sim::Time difs{sim::Time::microseconds(std::int64_t{50})};
  sim::Time plcp_overhead{sim::Time::microseconds(std::int64_t{192})};
  unsigned cw_min{31};
  unsigned cw_max{1023};
  unsigned short_retry_limit{7};  ///< frames sent without RTS protection
  unsigned long_retry_limit{4};   ///< data frames protected by RTS/CTS
  /// MAC payloads of at least this many bytes are preceded by RTS/CTS;
  /// SIZE_MAX disables the exchange entirely.
  std::size_t rts_threshold{SIZE_MAX};
  std::size_t data_header_bytes{34};  ///< 802.11 data header + FCS
  std::size_t ack_bytes{14};
  std::size_t rts_bytes{20};
  std::size_t cts_bytes{14};
  /// Allowance for propagation + rx/tx turnaround in response timeouts.
  sim::Time timeout_slack{sim::Time::microseconds(std::int64_t{15})};

  /// EIFS (802.11 §9.2.3.4): deferral used instead of DIFS after a frame
  /// is received in error, long enough for an unseen ACK exchange.
  sim::Time eifs(double ack_bits_at_basic_rate) const {
    return sifs + plcp_overhead +
           sim::Time::seconds(ack_bits_at_basic_rate / basic_rate_bps) + difs;
  }
};

/// IEEE 802.11 Distributed Coordination Function:
/// carrier sense (physical + NAV), DIFS deferral, binary-exponential
/// backoff with pause/resume, positive ACKs with retransmission and
/// contention-window doubling, optional RTS/CTS, duplicate filtering,
/// and link-failure indication to routing after the retry limit.
///
/// Simplifications vs the full standard (documented for reviewers):
/// no fragmentation, and a single retry counter per frame whose limit
/// depends on RTS protection.
class Mac80211 final : public MacBase {
 public:
  Mac80211(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
           std::unique_ptr<net::PacketQueue> ifq, Mac80211Params params = {});

  void enqueue(net::Packet p) override;
  bool detects_link_failures() const override { return true; }
  void set_link_up(bool up) override;

  const Mac80211Params& params() const noexcept { return params_; }

  // statistics
  std::uint64_t tx_data_count() const noexcept { return tx_data_; }
  std::uint64_t tx_retry_count() const noexcept { return tx_retries_; }
  std::uint64_t tx_drop_count() const noexcept { return tx_drops_; }
  std::uint64_t rx_dup_count() const noexcept { return rx_dups_; }

 private:
  enum class TxState : std::uint8_t { kIdle, kAccess, kWaitCts, kWaitAck };

  // --- medium / access engine ---
  bool medium_busy() const;
  void medium_changed();
  sim::Time access_deadline() const;
  void start_access();
  void on_difs_complete();
  void begin_countdown();
  void pause_backoff();
  void on_backoff_complete();
  void access_granted();
  void draw_backoff();
  bool engine_active() const { return difs_timer_.pending() || backoff_timer_.pending(); }

  // --- frame lifecycle ---
  void try_dequeue();
  void transmit_current();
  void send_data_frame();
  void on_data_tx_end();
  void on_response_timeout();
  void finish_frame();
  unsigned retry_limit_for_current() const;
  bool use_rts_for_current() const;

  // --- receive side ---
  void on_rx_end(net::Packet p, bool ok);
  void handle_data(net::Packet p);
  void handle_rts(const net::Packet& p);
  void handle_cts();
  void handle_ack();
  void schedule_response(net::Packet p, sim::Time airtime);
  void send_scheduled_response();
  void update_nav(sim::Time until);

  // --- helpers ---
  sim::Time data_airtime(const net::Packet& p) const;
  sim::Time ctrl_airtime(std::size_t bytes) const;
  net::Packet make_ctrl(net::PacketType type, net::NodeId dst, sim::Time duration);
  bool is_duplicate(const net::Packet& p);

  Mac80211Params params_;

  // access engine state
  bool medium_was_busy_{false};
  sim::Time idle_since_{};
  int pending_backoff_slots_{-1};
  sim::Time backoff_anchor_{};
  sim::Time nav_until_{};
  /// After a corrupted reception, access defers until here (EIFS rule).
  sim::Time eifs_until_{};
  unsigned cw_;

  // frame in service
  TxState state_{TxState::kIdle};
  std::optional<net::Packet> tx_frame_;
  unsigned retries_{0};
  bool cts_received_{false};

  // SIFS-spaced response (ACK / CTS / post-CTS data)
  std::optional<net::Packet> pending_response_;
  sim::Time pending_response_airtime_{};
  bool response_is_data_{false};

  // duplicate detection
  std::unordered_set<std::uint64_t> seen_uids_;
  std::deque<std::uint64_t> seen_order_;

  sim::Timer difs_timer_;
  sim::Timer backoff_timer_;
  sim::Timer response_timer_;
  sim::Timer nav_timer_;
  sim::Timer response_tx_timer_;
  sim::Timer post_tx_timer_;

  std::uint64_t tx_data_{0};
  std::uint64_t tx_retries_{0};
  std::uint64_t tx_drops_{0};
  std::uint64_t rx_dups_{0};
};

}  // namespace eblnet::mac
