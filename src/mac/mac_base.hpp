#pragma once

#include <memory>

#include "net/env.hpp"
#include "net/layers.hpp"
#include "phy/wireless_phy.hpp"

namespace eblnet::mac {

/// Shared plumbing for concrete MACs: owns the interface queue, holds the
/// phy and the upward/failure callbacks, traces ifq drops, and converts
/// frame sizes to airtime.
class MacBase : public net::MacLayer {
 public:
  MacBase(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
          std::unique_ptr<net::PacketQueue> ifq);

  net::NodeId address() const final { return address_; }

  void set_rx_callback(RxCallback cb) final { rx_cb_ = std::move(cb); }
  void set_tx_fail_callback(TxFailCallback cb) final { tx_fail_cb_ = std::move(cb); }

  /// Overridable (not final): the EDCA MAC also sweeps its internal
  /// per-access-category queues, which live outside `ifq_`.
  std::vector<net::Packet> flush_next_hop(net::NodeId next_hop) override {
    return ifq_->remove_by_next_hop(next_hop);
  }

  /// Crash/reboot plumbing shared by the concrete MACs: going down drains
  /// the interface queue (tracing each packet as a "FLT" ifq drop);
  /// subclasses cancel their timers / reset protocol state on top.
  void set_link_up(bool up) override;
  bool link_up() const noexcept { return link_up_; }

  const net::PacketQueue& ifq() const noexcept { return *ifq_; }
  const net::PacketQueue* interface_queue() const noexcept final { return ifq_.get(); }

 protected:
  /// Airtime of `bytes` at `rate_bps` plus the PLCP preamble overhead.
  static sim::Time airtime(std::size_t bytes, double rate_bps, sim::Time plcp_overhead) {
    return plcp_overhead + sim::Time::seconds(static_cast<double>(bytes) * 8.0 / rate_bps);
  }

  void deliver_up(net::Packet p) {
    if (rx_cb_) rx_cb_(std::move(p));
  }
  void report_tx_fail(const net::Packet& p) {
    if (tx_fail_cb_) tx_fail_cb_(p);
  }

  net::Env& env_;
  net::NodeId address_;
  phy::WirelessPhy& phy_;
  std::unique_ptr<net::PacketQueue> ifq_;

 private:
  RxCallback rx_cb_;
  TxFailCallback tx_fail_cb_;
  bool link_up_{true};
};

}  // namespace eblnet::mac
