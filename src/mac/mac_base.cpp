#include "mac/mac_base.hpp"

#include <stdexcept>

namespace eblnet::mac {

MacBase::MacBase(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
                 std::unique_ptr<net::PacketQueue> ifq)
    : env_{env}, address_{address}, phy_{phy}, ifq_{std::move(ifq)} {
  if (!ifq_) throw std::invalid_argument{"MacBase: interface queue required"};
  ifq_->bind_metrics(&env.metrics(), address);
  ifq_->set_drop_callback([this](const net::Packet& p, const char* reason) {
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, address_, p, reason);
  });
}

}  // namespace eblnet::mac
