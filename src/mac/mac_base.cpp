#include "mac/mac_base.hpp"

#include <stdexcept>

namespace eblnet::mac {

MacBase::MacBase(net::Env& env, net::NodeId address, phy::WirelessPhy& phy,
                 std::unique_ptr<net::PacketQueue> ifq)
    : env_{env}, address_{address}, phy_{phy}, ifq_{std::move(ifq)} {
  if (!ifq_) throw std::invalid_argument{"MacBase: interface queue required"};
  ifq_->bind_metrics(&env.metrics(), address);
  ifq_->bind_faults(&env.faults(), address);
  ifq_->set_drop_callback([this](const net::Packet& p, const char* reason) {
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, address_, p, reason);
  });
}

void MacBase::set_link_up(bool up) {
  if (up == link_up_) return;
  link_up_ = up;
  if (up) return;
  for (const net::Packet& p : ifq_->flush_all())
    env_.trace(net::TraceAction::kDrop, net::TraceLayer::kIfq, address_, p, "FLT");
}

}  // namespace eblnet::mac
