#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "mac/mac_base.hpp"
#include "net/env.hpp"
#include "net/layers.hpp"
#include "sim/timer.hpp"

namespace eblnet::mac {

/// ARP parameters (NS-2 LL/ARP flavoured).
struct ArpParams {
  /// Re-request interval while unresolved.
  sim::Time retry_interval{sim::Time::milliseconds(100)};
  unsigned max_retries{3};
  std::size_t request_bytes{28};
  std::size_t reply_bytes{28};
  /// NS-2's ARP holds exactly one packet per unresolved destination; a
  /// newer arrival displaces (drops) the held one.
  std::size_t hold_per_destination{1};
  /// Learn reachability from any overheard frame (an improvement over
  /// NS-2, whose ARP only learns from ARP replies). Disable to reproduce
  /// the NS-2 behaviour where even a node we just heard from must be
  /// resolved explicitly.
  bool passive_learning{true};
};

/// Address-resolution link layer, as a decorator over any MacLayer —
/// reproducing the LL/ARP stage of the NS-2 wireless stack the paper's
/// simulations ran through. With flat simulator addressing, resolution is
/// an identity map; what ARP contributes (and what this class models) is
/// the request/reply round trip and held-packet behaviour on the *first*
/// unicast to each neighbour, which inflates exactly the initial-packet
/// delay the paper's safety analysis hinges on. Off by default;
/// ScenarioConfig::use_arp enables it (see bench/ablation_arp).
class ArpLayer final : public net::MacLayer {
 public:
  ArpLayer(net::Env& env, std::unique_ptr<net::MacLayer> inner, ArpParams params = {});

  void enqueue(net::Packet p) override;
  void set_rx_callback(RxCallback cb) override { rx_cb_ = std::move(cb); }
  void set_tx_fail_callback(TxFailCallback cb) override;
  net::NodeId address() const override { return inner_->address(); }
  bool detects_link_failures() const override { return inner_->detects_link_failures(); }
  std::vector<net::Packet> flush_next_hop(net::NodeId next_hop) override;
  const net::PacketQueue* interface_queue() const noexcept override {
    return inner_->interface_queue();
  }
  /// Crash: forget the ARP cache and every held packet (a rebooted node
  /// re-resolves), then cascade into the wrapped MAC.
  void set_link_up(bool up) override {
    if (!up) {
      resolved_.clear();
      pending_.clear();
    }
    inner_->set_link_up(up);
  }

  // --- introspection ---
  bool is_resolved(net::NodeId dst) const { return resolved_.contains(dst); }
  std::uint64_t requests_sent() const noexcept { return requests_sent_; }
  std::uint64_t replies_sent() const noexcept { return replies_sent_; }
  std::uint64_t held_drops() const noexcept { return held_drops_; }

 private:
  struct Pending {
    std::deque<net::Packet> held;
    unsigned retries{0};
    std::unique_ptr<sim::Timer> timer;
  };

  void on_rx(net::Packet p);
  void send_request(net::NodeId dst);
  void on_retry_timeout(net::NodeId dst);
  net::Packet make_arp(net::PacketType type, net::NodeId dst);

  net::Env& env_;
  std::unique_ptr<net::MacLayer> inner_;
  ArpParams params_;
  std::unordered_set<net::NodeId> resolved_;
  std::unordered_map<net::NodeId, Pending> pending_;
  RxCallback rx_cb_;
  std::uint64_t requests_sent_{0};
  std::uint64_t replies_sent_{0};
  std::uint64_t held_drops_{0};
};

}  // namespace eblnet::mac
