#include "mobility/waypoint.hpp"

#include <stdexcept>

namespace eblnet::mobility {

WaypointMobility::WaypointMobility(Vec2 initial_pos) : initial_pos_{initial_pos} {}

void WaypointMobility::set_destination_at(sim::Time at, Vec2 dest, double speed) {
  if (speed <= 0.0) throw std::invalid_argument{"WaypointMobility: speed must be > 0"};
  if (!legs_.empty() && at < legs_.back().start)
    throw std::invalid_argument{"WaypointMobility: commands must be time-ordered"};
  const Vec2 from = position_at(at);
  const double dist = distance(from, dest);
  const sim::Time travel = sim::Time::seconds(dist / speed);
  legs_.push_back(Leg{at, at + travel, from, dest});
}

const WaypointMobility::Leg* WaypointMobility::leg_for(sim::Time t) const {
  const Leg* found = nullptr;
  for (const auto& leg : legs_) {
    if (leg.start <= t) found = &leg;
    else break;
  }
  return found;
}

Vec2 WaypointMobility::position_at(sim::Time t) const {
  const Leg* leg = leg_for(t);
  if (leg == nullptr) return initial_pos_;
  if (t >= leg->arrive) return leg->to;
  const double total = (leg->arrive - leg->start).to_seconds();
  const double frac = total == 0.0 ? 1.0 : (t - leg->start).to_seconds() / total;
  return leg->from + (leg->to - leg->from) * frac;
}

Vec2 WaypointMobility::velocity_at(sim::Time t) const {
  const Leg* leg = leg_for(t);
  if (leg == nullptr || t >= leg->arrive) return {};
  const double total = (leg->arrive - leg->start).to_seconds();
  if (total == 0.0) return {};
  return (leg->to - leg->from) / total;
}

}  // namespace eblnet::mobility
