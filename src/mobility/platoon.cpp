#include "mobility/platoon.hpp"

#include <stdexcept>

namespace eblnet::mobility {

Platoon::Platoon(sim::Scheduler& sched, std::size_t size, Vec2 lead_pos, Vec2 heading, double gap)
    : sched_{sched}, gap_{gap} {
  if (size == 0) throw std::invalid_argument{"Platoon: need at least one vehicle"};
  if (gap <= 0.0) throw std::invalid_argument{"Platoon: gap must be > 0"};
  const Vec2 h = heading.normalized();
  if (h == Vec2{}) throw std::invalid_argument{"Platoon: heading must be nonzero"};
  vehicles_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const Vec2 pos = lead_pos - h * (gap * static_cast<double>(i));
    vehicles_.push_back(std::make_shared<Vehicle>(sched, pos, h));
  }
}

void Platoon::cruise(double speed) {
  for (const auto& v : vehicles_) v->cruise(speed);
}

void Platoon::accelerate(double accel, double target_speed) {
  for (const auto& v : vehicles_) v->accelerate(accel, target_speed);
}

void Platoon::brake(double decel) {
  for (const auto& v : vehicles_) v->brake(decel);
}

void Platoon::set_heading(Vec2 heading) {
  const Vec2 h = heading.normalized();
  if (h == Vec2{}) throw std::invalid_argument{"Platoon: heading must be nonzero"};
  // Each vehicle pivots in place: the column then proceeds in parallel
  // lanes, which is all the departing-platoon leg of the scenario needs.
  for (const auto& v : vehicles_) v->set_heading(h);
}

sim::Time Platoon::drive_and_stop_at(Vec2 stop_point, double speed, double decel) {
  if (speed <= 0.0 || decel <= 0.0)
    throw std::invalid_argument{"Platoon: speed and decel must be > 0"};
  const Vec2 lead_pos = lead()->position_at(sched_.now());
  const Vec2 h = (stop_point - lead_pos).normalized();
  if (h == Vec2{}) throw std::invalid_argument{"Platoon: already at the stop point"};
  const double total = distance(lead_pos, stop_point);
  const double braking_dist = Vehicle::stopping_distance(speed, decel);
  if (braking_dist > total)
    throw std::invalid_argument{"Platoon: cannot stop in time at this speed/decel"};
  const double cruise_dist = total - braking_dist;
  const sim::Time brake_at = sched_.now() + sim::Time::seconds(cruise_dist / speed);
  const sim::Time stopped_at = brake_at + sim::Time::seconds(speed / decel);
  cruise(speed);
  sched_.schedule_at(brake_at, [this, decel] { brake(decel); });
  return stopped_at;
}

}  // namespace eblnet::mobility
