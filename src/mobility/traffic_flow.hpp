#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "mobility/dynamics.hpp"
#include "mobility/idm.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/vec2.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace eblnet::mobility {

/// One directed road: vehicles travel from `origin` along `direction`
/// for `length_m` metres across `lanes` parallel lanes (no lane
/// changes — each lane is an independent IDM column, which models
/// per-lane capacity without overtaking dynamics). A road with
/// `signal_green > 0` carries a fixed-cycle signal at `stop_line_m`:
/// during red, the first vehicle short of the stop line follows a
/// phantom standing leader parked on the line.
struct RoadSpec {
  Vec2 origin{};
  Vec2 direction{1.0, 0.0};  ///< normalized at construction
  double length_m{10'000.0};
  int lanes{1};
  double lane_width_m{3.5};
  double stop_line_m{-1.0};        ///< < 0: no signal on this road
  sim::Time signal_green{};        ///< zero: no signal on this road
  sim::Time signal_red{};
  sim::Time signal_offset{};       ///< phase shift of the green window
};

/// Configuration for a `TrafficFlow` engine.
struct TrafficFlowParams {
  std::vector<RoadSpec> roads;
  IdmParams idm{};
  /// Mean vehicle arrival rate per lane (Poisson process; inter-arrival
  /// times are exponential draws from the engine's dedicated spawn
  /// stream). Zero disables spawning — vehicles come from `spawn()`.
  double flow_rate_veh_per_s_per_lane{0.2};
  /// Per-vehicle desired-speed heterogeneity: each vehicle's v0 is drawn
  /// uniformly from idm.desired_speed_mps · [1 − jitter, 1 + jitter].
  double speed_jitter_frac{0.0};
  sim::Time tick{sim::Time::milliseconds(100)};  ///< integration step
  sim::Time end{sim::Time::max()};               ///< last tick fires at or before this
  /// Stop allocating once this many vehicles have ever spawned
  /// (0 = unbounded). Spawning resumes never — it is a hard cap.
  std::size_t max_vehicles{0};
  /// Accelerations at or below −threshold fire the hard-brake edge
  /// callback (the hook EBL origination listens on).
  double hard_brake_threshold_mps2{4.0};
  /// Speeds below this count as "slowed" for shockwave statistics.
  double slow_speed_mps{5.0};
  /// Record one mean-speed sample every this many ticks.
  int speed_sample_every_ticks{10};

  /// Straight multi-lane highway along +x.
  static TrafficFlowParams highway(int lanes, double length_m, double flow_veh_per_s_per_lane);
  /// Two perpendicular single-lane arms crossing mid-span, with exactly
  /// complementary signal phases (arm 0 green while arm 1 red and vice
  /// versa).
  static TrafficFlowParams intersection(double arm_length_m, double flow_veh_per_s_per_lane,
                                        sim::Time green, sim::Time red);
};

/// Driving-policy override applied to a vehicle by the reactive-braking
/// hook: scales the IDM time headway (larger = more cautious gap) and
/// caps the desired speed. Expires at an absolute time, after which the
/// vehicle reverts to its spawn parameters.
struct DrivingPolicy {
  double headway_scale{1.0};
  double speed_cap_mps{std::numeric_limits<double>::infinity()};
};

/// One "vehicle slowed below threshold" record for shockwave analysis.
struct SlowEvent {
  std::uint32_t vehicle;
  double t_s;      ///< first time speed dropped below slow_speed_mps
  double pos_m;    ///< longitudinal position at that moment
  std::uint16_t road;
  std::uint16_t lane;
};

/// Periodic aggregate sample of the whole flow.
struct SpeedSample {
  double t_s;
  double mean_speed_mps;
  std::uint32_t active;
};

/// Closed-loop car-following traffic engine: the canonical
/// `DynamicsModel`. All vehicle state lives in structure-of-arrays
/// vectors indexed by a dense spawn-ordered vehicle id (ids are never
/// reused; despawned vehicles deactivate and freeze in place). Each
/// (road, lane) pair is an independent front-to-back ordered IDM column.
///
/// Integration is a synchronous semi-implicit Euler step on a fixed
/// tick: every vehicle's acceleration is computed from the *previous*
/// tick's state, then all speeds and positions advance together — update
/// order within a tick cannot leak into the dynamics, so results are
/// independent of column iteration order.
///
/// Determinism: spawning draws from a dedicated Rng derived from the
/// seed passed at construction (splitmix-mixed, one child stream per
/// lane in fixed lane order), so network-side draws (e.g. rebroadcast
/// jitter, which varies with market penetration) never perturb the
/// arrival pattern — sweeps compare identical traffic.
///
/// Read side: `make_mobility(id)` returns a `MobilityModel` view that
/// extrapolates linearly from the last tick; the engine must outlive
/// every view.
class TrafficFlow final : public DynamicsModel {
 public:
  using VehicleId = std::uint32_t;
  static constexpr VehicleId kNoVehicle = UINT32_MAX;

  /// `seed` feeds the dedicated spawn stream only. Throws
  /// std::invalid_argument on malformed params (no roads, non-positive
  /// tick/rate/lane count, zero-length direction).
  TrafficFlow(TrafficFlowParams params, std::uint64_t seed);

  TrafficFlow(const TrafficFlow&) = delete;
  TrafficFlow& operator=(const TrafficFlow&) = delete;

  // -- DynamicsModel ---------------------------------------------------
  void start(sim::Scheduler& sched) override;
  void stop() override;
  /// v0·(1 + jitter) plus one tick of full-throttle Euler overshoot —
  /// IDM free acceleration is positive only below v0, so a vehicle can
  /// exceed its desired speed by at most a·dt.
  double max_speed_bound_mps() const override;

  const TrafficFlowParams& params() const noexcept { return params_; }

  // -- vehicle lifecycle -----------------------------------------------
  /// Manually inject a vehicle at longitudinal position `pos_m` moving
  /// at `speed_mps` (kNoVehicle if the max_vehicles cap is hit). The
  /// caller must keep columns ordered: `pos_m` must be strictly behind
  /// the rearmost vehicle already in (road, lane).
  VehicleId spawn(std::uint16_t road, std::uint16_t lane, double pos_m, double speed_mps);

  std::size_t spawned_total() const noexcept { return pos_.size(); }
  std::size_t active_count() const noexcept { return active_count_; }
  bool active(VehicleId v) const { return active_[v] != 0; }
  double longitudinal_pos(VehicleId v) const { return pos_[v]; }
  double speed_of(VehicleId v) const { return speed_[v]; }
  std::uint16_t road_of(VehicleId v) const { return road_[v]; }
  std::uint16_t lane_of(VehicleId v) const { return lane_[v]; }

  /// World-frame position at `t`, extrapolating from the last tick
  /// (clamped to the road extent; frozen once despawned).
  Vec2 position_of(VehicleId v, sim::Time t) const;
  Vec2 velocity_of(VehicleId v) const;

  /// Read-side view bound to one vehicle. The engine must outlive it.
  std::shared_ptr<MobilityModel> make_mobility(VehicleId v);

  // -- closed-loop hooks -------------------------------------------------
  /// Fired (synchronously, inside the tick) when a vehicle enters /
  /// permanently leaves the road, and on the rising edge of hard braking.
  void set_on_spawn(std::function<void(VehicleId)> cb) { on_spawn_ = std::move(cb); }
  void set_on_despawn(std::function<void(VehicleId)> cb) { on_despawn_ = std::move(cb); }
  void set_on_hard_brake(std::function<void(VehicleId)> cb) { on_hard_brake_ = std::move(cb); }

  /// Install a policy override on `v` until absolute time `until` (the
  /// reactive-braking hook: a received EBL warning widens the target gap
  /// and caps speed *before* the driver can see brake lights).
  void apply_policy(VehicleId v, DrivingPolicy policy, sim::Time until);

  /// Force `v` to brake at `decel` to a standstill and hold until the
  /// absolute time `until` (the staged incident that seeds a shockwave).
  void force_stop(VehicleId v, double decel_mps2, sim::Time until);

  // -- shockwave / congestion statistics ---------------------------------
  /// Start recording first-slow events (call when the incident begins so
  /// pre-incident noise — red signals, spawn transients — is excluded).
  void arm_slow_stats() { slow_stats_armed_ = true; }
  const std::vector<SlowEvent>& slow_events() const noexcept { return slow_events_; }
  const std::vector<SpeedSample>& speed_series() const noexcept { return speed_series_; }
  std::uint64_t ticks_executed() const noexcept { return ticks_; }

 private:
  struct LaneState {
    std::vector<VehicleId> column;  ///< front (largest pos) to back
    sim::Time next_spawn{};
    sim::Rng rng;                   ///< dedicated per-lane spawn stream
  };

  void step(sim::Scheduler& sched);
  void spawn_arrivals(sim::Time now);
  void compute_accels(sim::Time now);
  void integrate_and_cull(sim::Time now);
  bool signal_red_at(const RoadSpec& r, sim::Time t) const;
  LaneState& lane_state(std::uint16_t road, std::uint16_t lane) {
    return lanes_[lane_base_[road] + lane];
  }

  TrafficFlowParams params_;
  std::vector<LaneState> lanes_;
  std::vector<std::size_t> lane_base_;  ///< road -> first index into lanes_

  // SoA per-vehicle state, indexed by VehicleId (spawn order).
  std::vector<double> pos_;     ///< longitudinal metres along the road
  std::vector<double> speed_;
  std::vector<double> accel_;
  std::vector<double> v0_;      ///< per-vehicle desired speed
  std::vector<std::uint16_t> road_;
  std::vector<std::uint16_t> lane_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> braking_;   ///< hard-brake edge latch
  std::vector<std::uint8_t> forced_;    ///< force_stop override live
  std::vector<double> forced_decel_;
  std::vector<sim::Time> forced_until_;
  std::vector<DrivingPolicy> policy_;
  std::vector<sim::Time> policy_until_;
  std::vector<std::uint8_t> slowed_;    ///< already recorded a SlowEvent

  std::function<void(VehicleId)> on_spawn_;
  std::function<void(VehicleId)> on_despawn_;
  std::function<void(VehicleId)> on_hard_brake_;

  std::vector<SlowEvent> slow_events_;
  std::vector<SpeedSample> speed_series_;
  std::vector<VehicleId> brake_edges_;  ///< per-tick scratch, reused
  bool slow_stats_armed_{false};

  sim::Scheduler* sched_{nullptr};
  sim::EventId tick_event_{sim::kInvalidEventId};
  sim::Time last_step_{};
  std::uint64_t ticks_{0};
  std::size_t active_count_{0};
};

/// Read-side adapter: one vehicle of a `TrafficFlow`, presented through
/// the unchanged `MobilityModel` interface so phy / SpatialGrid /
/// nam_export consume dynamics-driven vehicles with zero changes.
class IdmVehicle final : public MobilityModel {
 public:
  IdmVehicle(TrafficFlow* flow, TrafficFlow::VehicleId id) : flow_{flow}, id_{id} {}

  Vec2 position_at(sim::Time t) const override { return flow_->position_of(id_, t); }
  Vec2 velocity_at(sim::Time) const override { return flow_->velocity_of(id_); }

  TrafficFlow::VehicleId vehicle_id() const noexcept { return id_; }

 private:
  TrafficFlow* flow_;
  TrafficFlow::VehicleId id_;
};

}  // namespace eblnet::mobility
