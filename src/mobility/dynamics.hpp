#pragma once

#include "sim/scheduler.hpp"

namespace eblnet::mobility {

/// Stateful side of the mobility split.
///
/// `MobilityModel` is the *read* side: a closed-form `position_at(t)`
/// oracle that consumers (phy, SpatialGrid, nam_export) may call at any
/// time without side effects. Scripted models (StaticMobility, Vehicle,
/// Platoon, Waypoint) are pure read-side objects — they stay closed-form
/// and add zero events to the queue.
///
/// A `DynamicsModel` owns vehicle state that *evolves by simulation
/// events* (a fixed integration tick scheduled through the shared event
/// queue) and can therefore react to the network: message reception may
/// change a vehicle's future trajectory, which a closed-form oracle
/// cannot express. Read-side views over a dynamics engine (see
/// `IdmVehicle`) extrapolate linearly from the last tick, so between
/// ticks they behave exactly like a constant-velocity closed-form model.
///
/// Contract with the channel's spatial grid: the grid's cull slack is
/// derived from a speed bound. Scripted models are covered by the static
/// `ChannelParams::grid_max_speed_mps`; a dynamics engine must declare
/// its own bound via `max_speed_bound_mps()`, which the scenario feeds to
/// `phy::Channel::raise_speed_bound` *before* vehicles start moving, so
/// an accelerating vehicle can never outrun its baked cull radius.
class DynamicsModel {
 public:
  virtual ~DynamicsModel() = default;

  /// Schedule the first integration tick. Ticks reschedule themselves
  /// until the engine's configured end time; `stop()` cancels early.
  virtual void start(sim::Scheduler& sched) = 0;

  /// Cancel the pending tick (idempotent). State freezes at the last
  /// integrated tick; read-side views keep extrapolating from it.
  virtual void stop() = 0;

  /// Upper bound on any vehicle's speed over the whole run, including
  /// integration overshoot. Must be valid from construction (before
  /// `start`), because the channel bakes it into cull radii up front.
  virtual double max_speed_bound_mps() const = 0;
};

}  // namespace eblnet::mobility
