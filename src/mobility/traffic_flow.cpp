#include "mobility/traffic_flow.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eblnet::mobility {

namespace {

// Hard physical braking floor (~0.9 g). IDM's interaction term diverges
// as the gap closes; clamping keeps one bad tick from producing an
// unphysical acceleration that would poison the hard-brake edge
// detector and the integrator alike.
constexpr double kMaxPhysicalDecel = 9.0;

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  // splitmix64 finalizer over the xor — decorrelates nearby seeds (same
  // recipe as the fault controller's dedicated stream).
  std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

TrafficFlowParams TrafficFlowParams::highway(int lanes, double length_m,
                                             double flow_veh_per_s_per_lane) {
  TrafficFlowParams p;
  RoadSpec road;
  road.origin = {0.0, 0.0};
  road.direction = {1.0, 0.0};
  road.length_m = length_m;
  road.lanes = lanes;
  p.roads.push_back(road);
  p.flow_rate_veh_per_s_per_lane = flow_veh_per_s_per_lane;
  return p;
}

TrafficFlowParams TrafficFlowParams::intersection(double arm_length_m,
                                                  double flow_veh_per_s_per_lane, sim::Time green,
                                                  sim::Time red) {
  TrafficFlowParams p;
  const double half = arm_length_m / 2.0;
  RoadSpec ew;  // west -> east, crossing at (half, 0)
  ew.origin = {0.0, 0.0};
  ew.direction = {1.0, 0.0};
  ew.length_m = arm_length_m;
  ew.stop_line_m = half - 10.0;
  ew.signal_green = green;
  ew.signal_red = red;
  RoadSpec ns = ew;  // south -> north, green window exactly complementary
  ns.origin = {half, -half};
  ns.direction = {0.0, 1.0};
  ns.signal_green = red;
  ns.signal_red = green;
  ns.signal_offset = green;
  p.roads.push_back(ew);
  p.roads.push_back(ns);
  p.flow_rate_veh_per_s_per_lane = flow_veh_per_s_per_lane;
  return p;
}

TrafficFlow::TrafficFlow(TrafficFlowParams params, std::uint64_t seed)
    : params_{std::move(params)} {
  const auto bad = [](const char* what) {
    throw std::invalid_argument{std::string{"TrafficFlow: "} + what};
  };
  if (params_.roads.empty()) bad("at least one road required");
  if (params_.tick <= sim::Time::zero()) bad("tick must be > 0");
  if (params_.flow_rate_veh_per_s_per_lane < 0.0) bad("flow rate must be >= 0");
  if (params_.speed_jitter_frac < 0.0 || params_.speed_jitter_frac >= 1.0)
    bad("speed jitter must be in [0, 1)");
  if (params_.idm.desired_speed_mps <= 0.0 || params_.idm.time_headway_s <= 0.0 ||
      params_.idm.max_accel_mps2 <= 0.0 || params_.idm.comfort_decel_mps2 <= 0.0 ||
      params_.idm.min_gap_m <= 0.0 || params_.idm.vehicle_length_m <= 0.0)
    bad("IDM parameters must be > 0");
  if (params_.speed_sample_every_ticks <= 0) bad("speed_sample_every_ticks must be > 0");

  // Dedicated spawn stream, decorrelated from the env's main stream by a
  // fixed domain tag so network-side draws never perturb arrivals.
  sim::Rng master{mix_seed(seed, 0xEB17'AFF1'C000'0001ULL)};
  std::size_t total_lanes = 0;
  for (auto& r : params_.roads) {
    if (r.lanes <= 0) bad("road must have >= 1 lane");
    if (r.length_m <= 0.0) bad("road length must be > 0");
    if (r.direction.length() == 0.0) bad("road direction must be non-zero");
    r.direction = r.direction.normalized();
    if (!r.signal_green.is_zero()) {
      if (r.stop_line_m < 0.0 || r.stop_line_m > r.length_m)
        bad("signalled road needs a stop line within its extent");
      const sim::Time cycle = r.signal_green + r.signal_red;
      if (r.signal_red <= sim::Time::zero()) bad("signal red phase must be > 0");
      if (r.signal_offset < sim::Time::zero() || r.signal_offset > cycle)
        bad("signal offset must lie within one cycle");
    }
    lane_base_.push_back(total_lanes);
    total_lanes += static_cast<std::size_t>(r.lanes);
  }
  lanes_.resize(total_lanes);
  const double mean_gap_s = params_.flow_rate_veh_per_s_per_lane > 0.0
                                ? 1.0 / params_.flow_rate_veh_per_s_per_lane
                                : 0.0;
  for (auto& ls : lanes_) {
    ls.rng = master.split();
    if (mean_gap_s > 0.0) ls.next_spawn = sim::Time::seconds(ls.rng.exponential(mean_gap_s));
  }
}

double TrafficFlow::max_speed_bound_mps() const {
  return params_.idm.desired_speed_mps * (1.0 + params_.speed_jitter_frac) +
         params_.idm.max_accel_mps2 * params_.tick.to_seconds();
}

void TrafficFlow::start(sim::Scheduler& sched) {
  if (tick_event_ != sim::kInvalidEventId) return;
  sched_ = &sched;
  last_step_ = sched.now();
  const sim::Time first = sched.now() + params_.tick;
  if (first > params_.end) return;
  tick_event_ = sched.schedule_at(first, [this] { step(*sched_); });
}

void TrafficFlow::stop() {
  if (sched_ != nullptr) sched_->cancel(tick_event_);
  tick_event_ = sim::kInvalidEventId;
}

TrafficFlow::VehicleId TrafficFlow::spawn(std::uint16_t road, std::uint16_t lane, double pos_m,
                                          double speed_mps) {
  if (road >= params_.roads.size() ||
      lane >= static_cast<std::uint16_t>(params_.roads[road].lanes))
    throw std::invalid_argument{"TrafficFlow::spawn: no such lane"};
  if (speed_mps < 0.0 || speed_mps > max_speed_bound_mps())
    throw std::invalid_argument{"TrafficFlow::spawn: speed outside the declared bound"};
  auto& col = lane_state(road, lane).column;
  if (!col.empty() && pos_m >= pos_[col.back()])
    throw std::invalid_argument{"TrafficFlow::spawn: must enter behind the rearmost vehicle"};
  if (params_.max_vehicles != 0 && pos_.size() >= params_.max_vehicles) return kNoVehicle;

  const auto id = static_cast<VehicleId>(pos_.size());
  pos_.push_back(pos_m);
  speed_.push_back(speed_mps);
  accel_.push_back(0.0);
  v0_.push_back(params_.idm.desired_speed_mps);
  road_.push_back(road);
  lane_.push_back(lane);
  active_.push_back(1);
  braking_.push_back(0);
  forced_.push_back(0);
  forced_decel_.push_back(0.0);
  forced_until_.push_back(sim::Time::zero());
  policy_.push_back(DrivingPolicy{});
  policy_until_.push_back(sim::Time::zero());
  slowed_.push_back(0);
  col.push_back(id);
  ++active_count_;
  if (on_spawn_) on_spawn_(id);
  return id;
}

void TrafficFlow::apply_policy(VehicleId v, DrivingPolicy policy, sim::Time until) {
  if (policy.headway_scale < 1.0 || policy.speed_cap_mps < 0.0)
    throw std::invalid_argument{"TrafficFlow: policy must not be more aggressive than baseline"};
  policy_[v] = policy;
  policy_until_[v] = until;
}

void TrafficFlow::force_stop(VehicleId v, double decel_mps2, sim::Time until) {
  if (decel_mps2 <= 0.0 || decel_mps2 > kMaxPhysicalDecel)
    throw std::invalid_argument{"TrafficFlow: force_stop decel must be in (0, 9] m/s^2"};
  forced_[v] = 1;
  forced_decel_[v] = decel_mps2;
  forced_until_[v] = until;
}

bool TrafficFlow::signal_red_at(const RoadSpec& r, sim::Time t) const {
  if (r.signal_green.is_zero() || r.stop_line_m < 0.0) return false;
  const sim::Time cycle = r.signal_green + r.signal_red;
  const sim::Time phase = (t + cycle - r.signal_offset) % cycle;
  return phase >= r.signal_green;
}

void TrafficFlow::spawn_arrivals(sim::Time now) {
  if (params_.flow_rate_veh_per_s_per_lane <= 0.0) return;
  const double mean_gap_s = 1.0 / params_.flow_rate_veh_per_s_per_lane;
  const IdmParams& idm = params_.idm;
  for (std::size_t r = 0; r < params_.roads.size(); ++r) {
    for (int l = 0; l < params_.roads[r].lanes; ++l) {
      auto& ls = lane_state(static_cast<std::uint16_t>(r), static_cast<std::uint16_t>(l));
      while (ls.next_spawn <= now) {
        if (params_.max_vehicles != 0 && pos_.size() >= params_.max_vehicles) return;
        double entry_speed = -1.0;
        if (!ls.column.empty()) {
          const VehicleId rear = ls.column.back();
          // A blocked entrance queues the arrival (retried next tick
          // without a fresh draw), so the arrival pattern stays a pure
          // function of the spawn stream.
          const double rear_v = speed_[rear];
          if (pos_[rear] < idm.vehicle_length_m + idm.min_gap_m + rear_v * idm.time_headway_s)
            break;
          entry_speed = rear_v;
        }
        const double jitter = params_.speed_jitter_frac;
        const double v_des =
            jitter > 0.0 ? idm.desired_speed_mps * ls.rng.uniform(1.0 - jitter, 1.0 + jitter)
                         : idm.desired_speed_mps;
        const double v_in = entry_speed < 0.0 ? v_des : std::min(v_des, entry_speed);
        const VehicleId id = spawn(static_cast<std::uint16_t>(r), static_cast<std::uint16_t>(l),
                                   0.0, v_in);
        if (id == kNoVehicle) return;
        v0_[id] = v_des;
        ls.next_spawn += sim::Time::seconds(ls.rng.exponential(mean_gap_s));
      }
    }
  }
}

void TrafficFlow::compute_accels(sim::Time now) {
  const IdmParams& base = params_.idm;
  brake_edges_.clear();
  for (std::size_t r = 0; r < params_.roads.size(); ++r) {
    const RoadSpec& road = params_.roads[r];
    const bool red = signal_red_at(road, now);
    for (int l = 0; l < road.lanes; ++l) {
      const auto& col =
          lane_state(static_cast<std::uint16_t>(r), static_cast<std::uint16_t>(l)).column;
      for (std::size_t i = 0; i < col.size(); ++i) {
        const VehicleId id = col[i];
        const double v = speed_[id];
        double gap = 1e9;
        double dv = 0.0;
        if (i > 0) {
          const VehicleId lead = col[i - 1];
          gap = pos_[lead] - pos_[id] - base.vehicle_length_m;
          dv = v - speed_[lead];
        }
        // During red, the first vehicle short of the stop line follows a
        // phantom standing leader parked on the line (vehicles past the
        // line clear the junction normally).
        if (red && pos_[id] < road.stop_line_m &&
            (i == 0 || pos_[col[i - 1]] >= road.stop_line_m)) {
          const double phantom_gap = road.stop_line_m - pos_[id];
          if (phantom_gap < gap) {
            gap = phantom_gap;
            dv = v;
          }
        }
        IdmParams eff = base;
        eff.desired_speed_mps = v0_[id];
        if (policy_until_[id] > now) {
          eff.time_headway_s *= policy_[id].headway_scale;
          eff.desired_speed_mps = std::min(eff.desired_speed_mps, policy_[id].speed_cap_mps);
        }
        double a = std::max(idm_acceleration(eff, v, gap, dv), -kMaxPhysicalDecel);
        if (forced_[id] != 0) {
          if (now >= forced_until_[id]) {
            forced_[id] = 0;
          } else {
            a = v > 0.0 ? std::min(a, -forced_decel_[id]) : 0.0;
          }
        }
        accel_[id] = a;
        if (a <= -params_.hard_brake_threshold_mps2) {
          if (braking_[id] == 0) {
            braking_[id] = 1;
            brake_edges_.push_back(id);
          }
        } else if (a > -0.5 * params_.hard_brake_threshold_mps2) {
          braking_[id] = 0;
        }
      }
    }
  }
}

void TrafficFlow::integrate_and_cull(sim::Time now) {
  const double dt = params_.tick.to_seconds();
  const double now_s = now.to_seconds();
  for (std::size_t r = 0; r < params_.roads.size(); ++r) {
    const RoadSpec& road = params_.roads[r];
    for (int l = 0; l < road.lanes; ++l) {
      auto& col = lane_state(static_cast<std::uint16_t>(r), static_cast<std::uint16_t>(l)).column;
      for (const VehicleId id : col) {
        // Semi-implicit Euler: speed first, then position with the new
        // speed. All accelerations came from the previous tick's state,
        // so the update is synchronous across every column.
        const double v_new = std::max(0.0, speed_[id] + accel_[id] * dt);
        pos_[id] += v_new * dt;
        speed_[id] = v_new;
        if (slow_stats_armed_ && slowed_[id] == 0 && v_new < params_.slow_speed_mps) {
          slowed_[id] = 1;
          slow_events_.push_back({id, now_s, pos_[id], static_cast<std::uint16_t>(r),
                                  static_cast<std::uint16_t>(l)});
        }
      }
      while (!col.empty() && pos_[col.front()] >= road.length_m) {
        const VehicleId gone = col.front();
        col.erase(col.begin());
        pos_[gone] = road.length_m;
        speed_[gone] = 0.0;
        accel_[gone] = 0.0;
        active_[gone] = 0;
        --active_count_;
        if (on_despawn_) on_despawn_(gone);
      }
    }
  }
}

void TrafficFlow::step(sim::Scheduler& sched) {
  const sim::Time now = sched.now();
  spawn_arrivals(now);
  compute_accels(now);
  // Edges fire after the full sweep so a callback (e.g. EBL warning
  // origination) observes a consistent acceleration field; any policy it
  // installs takes effect from the *next* tick.
  for (const VehicleId id : brake_edges_) {
    if (on_hard_brake_) on_hard_brake_(id);
  }
  integrate_and_cull(now);
  last_step_ = now;
  ++ticks_;
  if (ticks_ % static_cast<std::uint64_t>(params_.speed_sample_every_ticks) == 0) {
    double sum = 0.0;
    std::uint32_t n = 0;
    for (const auto& ls : lanes_) {
      for (const VehicleId id : ls.column) {
        sum += speed_[id];
        ++n;
      }
    }
    speed_series_.push_back({now.to_seconds(), n > 0 ? sum / n : 0.0, n});
  }
  const sim::Time next = now + params_.tick;
  if (next <= params_.end) {
    tick_event_ = sched.schedule_at(next, [this] { step(*sched_); });
  } else {
    tick_event_ = sim::kInvalidEventId;
  }
}

Vec2 TrafficFlow::position_of(VehicleId v, sim::Time t) const {
  const RoadSpec& r = params_.roads[road_[v]];
  double s = pos_[v];
  if (active_[v] != 0 && t > last_step_) s += speed_[v] * (t - last_step_).to_seconds();
  s = std::min(s, r.length_m);
  const Vec2 perp{-r.direction.y, r.direction.x};
  const double offset = (static_cast<double>(lane_[v]) + 0.5) * r.lane_width_m;
  return r.origin + r.direction * s + perp * offset;
}

Vec2 TrafficFlow::velocity_of(VehicleId v) const {
  if (active_[v] == 0) return {};
  return params_.roads[road_[v]].direction * speed_[v];
}

std::shared_ptr<MobilityModel> TrafficFlow::make_mobility(VehicleId v) {
  return std::make_shared<IdmVehicle>(this, v);
}

}  // namespace eblnet::mobility
