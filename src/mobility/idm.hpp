#pragma once

#include <algorithm>
#include <cmath>

namespace eblnet::mobility {

/// Intelligent Driver Model parameters (Treiber/Hennecke/Helbing 2000).
/// Defaults are the canonical highway calibration from the paper's
/// related car-following literature: free speed 33 m/s (~120 km/h),
/// 1.5 s time headway, comfortable braking 2 m/s².
struct IdmParams {
  double desired_speed_mps{33.0};   ///< v0 — free-road target speed
  double time_headway_s{1.5};       ///< T — desired bumper-to-bumper headway
  double max_accel_mps2{1.4};       ///< a — maximum acceleration
  double comfort_decel_mps2{2.0};   ///< b — comfortable deceleration
  double min_gap_m{2.0};            ///< s0 — standstill jam gap
  double vehicle_length_m{5.0};     ///< L — bumper-to-bumper geometry
  double accel_exponent{4.0};       ///< delta — free-acceleration exponent
};

/// Desired dynamic gap s*(v, Δv) = s0 + vT + vΔv / (2√(ab)), floored at
/// s0 (the dynamic term can go negative when closing speed Δv < 0).
inline double idm_desired_gap(const IdmParams& p, double v, double dv) {
  const double dynamic =
      v * p.time_headway_s + v * dv / (2.0 * std::sqrt(p.max_accel_mps2 * p.comfort_decel_mps2));
  return p.min_gap_m + std::max(0.0, dynamic);
}

/// IDM acceleration a·[1 − (v/v0)^δ − (s*/s)²] for bumper-to-bumper gap
/// `gap` to the leader and closing speed `dv` = v − v_leader. Pass a huge
/// gap (e.g. 1e9) for free road; the interaction term vanishes. `gap` is
/// clamped to a small positive epsilon so an (unphysical) overlap yields
/// a large finite braking demand instead of inf/NaN.
inline double idm_acceleration(const IdmParams& p, double v, double gap, double dv) {
  const double free = std::pow(v / p.desired_speed_mps, p.accel_exponent);
  const double s_star = idm_desired_gap(p, v, dv);
  const double ratio = s_star / std::max(gap, 0.01);
  return p.max_accel_mps2 * (1.0 - free - ratio * ratio);
}

/// Equilibrium (zero-acceleration, zero-closing-speed) gap at speed v:
/// the fixed point s_e(v) = (s0 + vT) / sqrt(1 − (v/v0)^δ). Diverges as
/// v → v0 — a platoon cruising at the free speed has no finite
/// equilibrium spacing.
inline double idm_equilibrium_gap(const IdmParams& p, double v) {
  const double free = std::pow(v / p.desired_speed_mps, p.accel_exponent);
  return (p.min_gap_m + v * p.time_headway_s) / std::sqrt(1.0 - free);
}

}  // namespace eblnet::mobility
