#pragma once

#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace eblnet::mobility {

/// Position source for a node. Implementations compute position lazily
/// from closed-form kinematics — there is no per-tick movement event, so
/// mobility adds zero load to the event queue.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual Vec2 position_at(sim::Time t) const = 0;
  virtual Vec2 velocity_at(sim::Time t) const = 0;

  double speed_at(sim::Time t) const { return velocity_at(t).length(); }
};

/// A node that never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_{pos} {}
  Vec2 position_at(sim::Time) const override { return pos_; }
  Vec2 velocity_at(sim::Time) const override { return {}; }

 private:
  Vec2 pos_;
};

}  // namespace eblnet::mobility
