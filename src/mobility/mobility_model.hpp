#pragma once

#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace eblnet::mobility {

/// Position source for a node — the *read side* of the mobility split.
/// Consumers (phy, SpatialGrid, nam_export) only ever call these const
/// accessors; how the trajectory comes to be is not their business.
///
/// Scripted implementations (StaticMobility, Vehicle, Platoon,
/// Waypoint) compute position lazily from closed-form kinematics —
/// there is no per-tick movement event, so they add zero load to the
/// event queue. Stateful dynamics (see mobility/dynamics.hpp and
/// TrafficFlow) integrate on a fixed tick through the event queue and
/// expose per-vehicle read views (IdmVehicle) through this same
/// interface, extrapolating linearly between ticks.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual Vec2 position_at(sim::Time t) const = 0;
  virtual Vec2 velocity_at(sim::Time t) const = 0;

  double speed_at(sim::Time t) const { return velocity_at(t).length(); }
};

/// A node that never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_{pos} {}
  Vec2 position_at(sim::Time) const override { return pos_; }
  Vec2 velocity_at(sim::Time) const override { return {}; }

 private:
  Vec2 pos_;
};

}  // namespace eblnet::mobility
