#pragma once

#include <memory>
#include <vector>

#include "mobility/vehicle.hpp"

namespace eblnet::mobility {

/// A column of vehicles with fixed headway that move as a unit: the lead
/// vehicle at `lead_pos`, followers spaced `gap` metres behind it along
/// the (reversed) heading. Commands are applied to every member, so the
/// platoon keeps its geometry — the coordinated-driving idealisation the
/// paper's scenario uses.
class Platoon {
 public:
  Platoon(sim::Scheduler& sched, std::size_t size, Vec2 lead_pos, Vec2 heading, double gap);

  std::size_t size() const noexcept { return vehicles_.size(); }
  double gap() const noexcept { return gap_; }

  /// Member 0 is the lead vehicle; higher indices trail behind.
  const std::shared_ptr<Vehicle>& vehicle(std::size_t i) const { return vehicles_.at(i); }
  const std::shared_ptr<Vehicle>& lead() const { return vehicles_.front(); }
  const std::shared_ptr<Vehicle>& trailing() const { return vehicles_.back(); }

  void cruise(double speed);
  void accelerate(double accel, double target_speed);
  void brake(double decel);

  /// Rotate the whole platoon about the lead vehicle to face `heading`
  /// (all members must be stopped).
  void set_heading(Vec2 heading);

  /// Convenience: cruise at `speed` and brake with `decel` timed so the
  /// *lead* vehicle comes to rest exactly at `stop_point` (which must lie
  /// ahead along the heading). Events are scheduled on the shared
  /// scheduler. Returns the time at which the platoon will be fully
  /// stopped.
  sim::Time drive_and_stop_at(Vec2 stop_point, double speed, double decel);

 private:
  sim::Scheduler& sched_;
  std::vector<std::shared_ptr<Vehicle>> vehicles_;
  double gap_;
};

}  // namespace eblnet::mobility
