#pragma once

#include <cmath>

namespace eblnet::mobility {

/// 2-D position/velocity vector in metres (or m/s).
struct Vec2 {
  double x{0.0};
  double y{0.0};

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) noexcept { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) noexcept { return a * k; }
  friend constexpr Vec2 operator/(Vec2 a, double k) noexcept { return {a.x / k, a.y / k}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;

  constexpr double dot(Vec2 b) const noexcept { return x * b.x + y * b.y; }
  double length() const noexcept { return std::sqrt(x * x + y * y); }

  /// Unit vector in this direction; {0,0} stays {0,0}.
  Vec2 normalized() const noexcept {
    const double len = length();
    return len == 0.0 ? Vec2{} : Vec2{x / len, y / len};
  }
};

inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).length(); }

/// Miles-per-hour to metres-per-second (the paper quotes both).
constexpr double mph_to_mps(double mph) noexcept { return mph * 0.44704; }

}  // namespace eblnet::mobility
