#pragma once

#include <functional>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace eblnet::mobility {

/// Driving state of a vehicle. The EBL application communicates exactly
/// while the vehicle is kBraking or kStopped (the paper's rule:
/// "communication between the vehicles occurs only when the vehicles are
/// braking or stopped").
enum class DriveState : std::uint8_t { kCruising, kBraking, kStopped };

const char* to_string(DriveState s) noexcept;

/// A vehicle moving along a fixed heading with piecewise-constant
/// acceleration: cruising at constant speed, braking at constant
/// deceleration to a stop, or stopped. Closed-form kinematics; the only
/// scheduled event is the braking→stopped transition.
class Vehicle final : public MobilityModel {
 public:
  /// Starts stopped at `pos`, facing `heading` (need not be unit length).
  Vehicle(sim::Scheduler& sched, Vec2 pos, Vec2 heading);

  Vehicle(const Vehicle&) = delete;
  Vehicle& operator=(const Vehicle&) = delete;

  /// Begin (or continue) cruising at `speed` m/s along the heading
  /// (instantaneous speed change; use accelerate() for a ramp).
  void cruise(double speed);

  /// Speed up (or down) at |accel| m/s^2 toward `target_speed`, then hold
  /// it. The vehicle counts as kCruising throughout — EBL's
  /// "braking or stopped" rule is about *braking*, not speed changes.
  void accelerate(double accel, double target_speed);

  /// Brake at `decel` m/s^2 until stopped. No-op when already stopped.
  void brake(double decel);

  /// Change heading (only while stopped — vehicles don't drift sideways).
  void set_heading(Vec2 heading);

  DriveState state() const noexcept { return state_; }
  bool is_braking_or_stopped() const noexcept { return state_ != DriveState::kCruising; }

  /// Speed right now (m/s).
  double current_speed() const;

  /// Observers are notified on every state transition, including the
  /// scheduled braking→stopped transition.
  using StateCallback = std::function<void(DriveState)>;
  void subscribe(StateCallback cb) { observers_.push_back(std::move(cb)); }

  Vec2 position_at(sim::Time t) const override;
  Vec2 velocity_at(sim::Time t) const override;

  /// Distance covered from speed `v` to rest at constant `decel` (m).
  static double stopping_distance(double v, double decel) { return v * v / (2.0 * decel); }

 private:
  /// One kinematic phase starting at `t0`: speed ramps from v0 at
  /// `accel` (signed, along the heading) until it reaches `v_target`,
  /// then holds. Braking is accel < 0 with v_target = 0.
  struct Phase {
    sim::Time t0;
    Vec2 pos0;
    double v0;        ///< speed at t0 (m/s, along heading)
    double accel;     ///< signed acceleration along the heading
    double v_target;  ///< speed held once reached
    Vec2 heading;     ///< unit vector

    /// Seconds after t0 at which v_target is reached (0 when accel == 0).
    double ramp_seconds() const noexcept {
      return accel == 0.0 ? 0.0 : (v_target - v0) / accel;
    }
  };

  const Phase& phase_for(sim::Time t) const;
  void push_phase(double v0, double accel, double v_target);
  void enter_state(DriveState s);

  sim::Scheduler& sched_;
  std::vector<Phase> phases_;
  Vec2 heading_;
  DriveState state_{DriveState::kStopped};
  sim::Timer stop_timer_;
  std::vector<StateCallback> observers_;
};

}  // namespace eblnet::mobility
