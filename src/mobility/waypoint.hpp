#pragma once

#include <vector>

#include "mobility/mobility_model.hpp"

namespace eblnet::mobility {

/// NS-2 `setdest`-style waypoint mobility: a sequence of (time,
/// destination, speed) commands; the node moves in a straight line at
/// constant speed toward each destination and waits there until the next
/// command. Commands may be installed up-front or during the simulation,
/// but only with nondecreasing activation times.
class WaypointMobility final : public MobilityModel {
 public:
  explicit WaypointMobility(Vec2 initial_pos);

  /// `$ns at <at> "$node setdest <dest> <speed>"`. Requires speed > 0 and
  /// `at` not earlier than the previous command.
  void set_destination_at(sim::Time at, Vec2 dest, double speed);

  Vec2 position_at(sim::Time t) const override;
  Vec2 velocity_at(sim::Time t) const override;

 private:
  /// Motion is a list of legs: from `start` the node is at `from` moving
  /// toward `to`, arriving at `arrive`; after `arrive` it rests at `to`.
  struct Leg {
    sim::Time start;
    sim::Time arrive;
    Vec2 from;
    Vec2 to;
  };

  const Leg* leg_for(sim::Time t) const;

  Vec2 initial_pos_;
  std::vector<Leg> legs_;
};

}  // namespace eblnet::mobility
