#include "mobility/vehicle.hpp"

#include <cassert>
#include <stdexcept>

namespace eblnet::mobility {

const char* to_string(DriveState s) noexcept {
  switch (s) {
    case DriveState::kCruising: return "cruising";
    case DriveState::kBraking: return "braking";
    case DriveState::kStopped: return "stopped";
  }
  return "?";
}

Vehicle::Vehicle(sim::Scheduler& sched, Vec2 pos, Vec2 heading)
    : sched_{sched},
      heading_{heading.normalized()},
      stop_timer_{sched, [this] { enter_state(DriveState::kStopped); }} {
  if (heading_ == Vec2{}) throw std::invalid_argument{"Vehicle: heading must be nonzero"};
  phases_.push_back(Phase{sched_.now(), pos, 0.0, 0.0, 0.0, heading_});
}

void Vehicle::cruise(double speed) {
  if (speed <= 0.0) throw std::invalid_argument{"Vehicle: cruise speed must be > 0"};
  stop_timer_.cancel();
  push_phase(speed, 0.0, speed);
  enter_state(DriveState::kCruising);
}

void Vehicle::accelerate(double accel, double target_speed) {
  if (accel <= 0.0) throw std::invalid_argument{"Vehicle: acceleration must be > 0"};
  if (target_speed <= 0.0) throw std::invalid_argument{"Vehicle: target speed must be > 0"};
  stop_timer_.cancel();
  const double v = current_speed();
  // Ramp toward the target from either side (speed up or ease down).
  const double a = target_speed >= v ? accel : -accel;
  push_phase(v, a, target_speed);
  enter_state(DriveState::kCruising);
}

void Vehicle::brake(double decel) {
  if (decel <= 0.0) throw std::invalid_argument{"Vehicle: deceleration must be > 0"};
  if (state_ == DriveState::kStopped) return;
  const double v = current_speed();
  push_phase(v, -decel, 0.0);
  if (v <= 0.0) {
    enter_state(DriveState::kStopped);
    return;
  }
  enter_state(DriveState::kBraking);
  stop_timer_.schedule_in(sim::Time::seconds(v / decel));
}

void Vehicle::set_heading(Vec2 heading) {
  if (state_ != DriveState::kStopped)
    throw std::logic_error{"Vehicle: heading can only change while stopped"};
  const Vec2 h = heading.normalized();
  if (h == Vec2{}) throw std::invalid_argument{"Vehicle: heading must be nonzero"};
  heading_ = h;
  push_phase(0.0, 0.0, 0.0);
}

double Vehicle::current_speed() const { return velocity_at(sched_.now()).length(); }

const Vehicle::Phase& Vehicle::phase_for(sim::Time t) const {
  assert(!phases_.empty());
  const Phase* found = &phases_.front();
  for (const auto& ph : phases_) {
    if (ph.t0 <= t) found = &ph;
    else break;
  }
  return *found;
}

void Vehicle::push_phase(double v0, double accel, double v_target) {
  const sim::Time now = sched_.now();
  const Vec2 pos = position_at(now);
  if (!phases_.empty() && phases_.back().t0 == now) phases_.pop_back();
  phases_.push_back(Phase{now, pos, v0, accel, v_target, heading_});
}

void Vehicle::enter_state(DriveState s) {
  if (state_ == s) return;
  state_ = s;
  for (const auto& cb : observers_) cb(s);
}

Vec2 Vehicle::position_at(sim::Time t) const {
  const Phase& ph = phase_for(t);
  double dt = (t - ph.t0).to_seconds();
  if (dt < 0.0) dt = 0.0;
  double s;
  if (ph.accel != 0.0) {
    const double t_ramp = ph.ramp_seconds();
    if (dt < t_ramp) {
      s = ph.v0 * dt + 0.5 * ph.accel * dt * dt;
    } else {
      s = 0.5 * (ph.v0 + ph.v_target) * t_ramp + ph.v_target * (dt - t_ramp);
    }
  } else {
    s = ph.v0 * dt;
  }
  return ph.pos0 + ph.heading * s;
}

Vec2 Vehicle::velocity_at(sim::Time t) const {
  const Phase& ph = phase_for(t);
  double dt = (t - ph.t0).to_seconds();
  if (dt < 0.0) dt = 0.0;
  double v = ph.v0;
  if (ph.accel != 0.0) {
    v = dt < ph.ramp_seconds() ? ph.v0 + ph.accel * dt : ph.v_target;
  }
  return ph.heading * v;
}

}  // namespace eblnet::mobility
